// Package peer holds the configuration every read-side peer of a Fides
// deployment shares. Light clients, watchtowers and auditors all attach
// the same way — a public-key registry, a transport endpoint, the full
// server set, a sync source, the designated coordinator and a paging size
// — and before this package each of them restated those fields (and their
// defaulting and validation) in its own Config. PeerConfig is the one
// shared statement; the consumers embed it.
package peer

import (
	"fmt"

	"repro/internal/crypto"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/transport"
)

// PeerConfig is the wiring common to every read-side peer.
type PeerConfig struct {
	// Registry resolves all node public keys; collective signatures are
	// verified against it.
	Registry *identity.Registry
	// Transport carries the wire messages.
	Transport transport.Transport
	// Servers is the full server set. Every accepted block or header must
	// be signed by exactly this set — "even an aborted transaction must
	// be signed by all the servers" (§4.3.1), so a subset signature is a
	// forgery no matter how valid its aggregate.
	Servers []identity.NodeID
	// Source is the server headers or blocks are synced from (default
	// Servers[0]). Reads always go to the owning server; only the sync
	// stream has a configurable source.
	Source identity.NodeID
	// Coordinator optionally names the designated coordinator, so
	// findings that implicate block production (equivocation, fake roots)
	// can also name it.
	Coordinator identity.NodeID
	// PageSize is the sync page size; zero takes the consumer's default.
	PageSize uint32
	// Obs supplies metrics, tracing and logging; nil runs dark (detached
	// instruments, discard logger).
	Obs *obs.Obs
	// Verifier is the peer's verification plane for collective
	// signatures. Nil defaults to the serial backend over Registry;
	// peers of one deployment should share a caching (batched) instance —
	// they all verify the same co-signed headers, so one verdict cache
	// serves them all.
	Verifier ledger.CoSigVerifier
}

// ApplyDefaults fills the zero fields: Source (first server), PageSize
// (the consumer's default) and the serial verification backend.
func (c *PeerConfig) ApplyDefaults(defaultPageSize uint32) {
	if c.Source == "" && len(c.Servers) > 0 {
		c.Source = c.Servers[0]
	}
	if c.PageSize == 0 {
		c.PageSize = defaultPageSize
	}
	if c.Verifier == nil {
		c.Verifier = crypto.NewSerial(c.Registry)
	}
}

// Validate reports missing required wiring; kind names the consumer in
// the error ("lightclient", "watch", "audit").
func (c *PeerConfig) Validate(kind string) error {
	if c.Registry == nil || c.Transport == nil {
		return fmt.Errorf("%s: config requires registry and transport", kind)
	}
	if len(c.Servers) == 0 {
		return fmt.Errorf("%s: config requires the server set", kind)
	}
	return nil
}
