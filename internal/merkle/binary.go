package merkle

import (
	"fmt"

	"repro/internal/binenc"
)

// Binary encoding of a Verification Object, used by the audit RPC codec:
// index | nSiblings | sibling bytes... (lengths uvarint-prefixed).

// AppendBinary appends the proof's binary encoding.
func (p *Proof) AppendBinary(buf []byte) []byte {
	buf = binenc.AppendUvarint(buf, uint64(p.Index))
	buf = binenc.AppendUvarint(buf, uint64(len(p.Siblings)))
	for _, s := range p.Siblings {
		buf = binenc.AppendBytes(buf, s)
	}
	return buf
}

// DecodeProof reads an embedded proof from r.
func DecodeProof(r *binenc.Reader, p *Proof) error {
	p.Index = int(r.Uvarint())
	p.Siblings = nil
	if n := r.Count(1); n > 0 {
		p.Siblings = make([][]byte, n)
		for i := range p.Siblings {
			p.Siblings[i] = r.Bytes()
		}
	}
	return r.Err()
}

// MarshalBinary returns the proof's binary encoding.
func (p *Proof) MarshalBinary() ([]byte, error) {
	return p.AppendBinary(nil), nil
}

// UnmarshalBinary decodes a proof from its binary encoding.
func (p *Proof) UnmarshalBinary(data []byte) error {
	r := binenc.NewReader(data)
	if err := DecodeProof(&r, p); err != nil {
		return fmt.Errorf("merkle: decode proof: %w", err)
	}
	if err := r.Done(); err != nil {
		return fmt.Errorf("merkle: decode proof: %w", err)
	}
	return nil
}
