// Package merkle implements the Merkle hash tree (MHT) of paper §2.3 and the
// data-authentication machinery of §4.2.2: building a binary hash tree over
// the items of a shard, O(log n) incremental single-leaf updates (the
// dominant cost TFCommit measures in Figure 14), and Verification Objects
// (VO) — the sibling hashes along the path from a leaf to the root — which
// let an auditor recompute the expected root from a single item's content.
//
// Hashes are SHA-256. Leaf and interior hashes are domain-separated so a
// leaf can never be confused with an interior node (second-preimage
// hardening). Trees with a non-power-of-two number of leaves are padded with
// a fixed empty hash.
package merkle

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
)

// HashSize is the size in bytes of every node hash in the tree.
const HashSize = sha256.Size

var (
	leafPrefix     = []byte{0x00}
	interiorPrefix = []byte{0x01}

	// emptyLeaf is the hash used to pad the leaf level up to a power of two.
	emptyLeaf = sha256.Sum256([]byte{0x02})
)

// ErrIndexRange is returned when a leaf index is outside the tree.
var ErrIndexRange = errors.New("merkle: leaf index out of range")

// LeafHash computes the domain-separated hash of a leaf's content.
func LeafHash(content []byte) []byte {
	h := sha256.New()
	h.Write(leafPrefix)
	h.Write(content)
	return h.Sum(nil)
}

// interiorHash computes the domain-separated hash of two child hashes,
// h(left | right) in the paper's notation.
func interiorHash(left, right []byte) []byte {
	h := sha256.New()
	h.Write(interiorPrefix)
	h.Write(left)
	h.Write(right)
	return h.Sum(nil)
}

// Tree is a mutable Merkle hash tree with a fixed number of leaves. The tree
// is stored as a flat array in the classic heap layout: nodes[1] is the
// root, nodes[2i] and nodes[2i+1] are the children of nodes[i], and the
// leaves occupy nodes[cap .. cap+n).
//
// Tree is not safe for concurrent use; callers synchronize externally (the
// shard holding the tree serializes access, matching the sequential block
// production of the paper).
type Tree struct {
	n     int      // number of real leaves
	cap   int      // leaf capacity, power of two, >= n
	nodes [][]byte // 1-based heap array of size 2*cap
}

// New builds a tree over the given leaf hashes (as produced by LeafHash).
// The leaf hashes are copied; the caller may reuse the slices.
func New(leafHashes [][]byte) *Tree {
	n := len(leafHashes)
	capacity := 1
	for capacity < n {
		capacity *= 2
	}
	if n == 0 {
		capacity = 1
	}
	t := &Tree{n: n, cap: capacity, nodes: make([][]byte, 2*capacity)}
	for i := 0; i < capacity; i++ {
		if i < n {
			t.nodes[capacity+i] = append([]byte(nil), leafHashes[i]...)
		} else {
			t.nodes[capacity+i] = emptyLeaf[:]
		}
	}
	for i := capacity - 1; i >= 1; i-- {
		t.nodes[i] = interiorHash(t.nodes[2*i], t.nodes[2*i+1])
	}
	return t
}

// NewFromContents builds a tree hashing each content slice with LeafHash.
func NewFromContents(contents [][]byte) *Tree {
	hashes := make([][]byte, len(contents))
	for i, c := range contents {
		hashes[i] = LeafHash(c)
	}
	return New(hashes)
}

// Len returns the number of (real) leaves in the tree.
func (t *Tree) Len() int { return t.n }

// Depth returns the number of tree levels: log₂ of the leaf capacity (the
// padded power of two). Every proof path in the tree has exactly Depth
// sibling hashes.
func (t *Tree) Depth() int { return log2(t.cap) }

// Root returns a copy of the current root hash.
func (t *Tree) Root() []byte {
	return append([]byte(nil), t.nodes[1]...)
}

// Leaf returns a copy of the hash currently stored at leaf index i.
func (t *Tree) Leaf(i int) ([]byte, error) {
	if i < 0 || i >= t.n {
		return nil, fmt.Errorf("%w: %d (n=%d)", ErrIndexRange, i, t.n)
	}
	return append([]byte(nil), t.nodes[t.cap+i]...), nil
}

// Update replaces the hash at leaf index i and recomputes the O(log n)
// ancestor hashes up to the root. It returns the previous leaf hash so the
// caller can revert the update (used for the in-memory overlay roots cohorts
// compute during the Vote phase, paper §4.3.1).
func (t *Tree) Update(i int, newLeafHash []byte) (old []byte, err error) {
	if i < 0 || i >= t.n {
		return nil, fmt.Errorf("%w: %d (n=%d)", ErrIndexRange, i, t.n)
	}
	pos := t.cap + i
	old = t.nodes[pos]
	t.nodes[pos] = append([]byte(nil), newLeafHash...)
	for pos /= 2; pos >= 1; pos /= 2 {
		t.nodes[pos] = interiorHash(t.nodes[2*pos], t.nodes[2*pos+1])
	}
	return old, nil
}

// Proof is a Verification Object (VO, paper §2.3): the sibling hashes along
// the path from leaf Index to the root, ordered leaf-level first. Given the
// leaf's content, VerifyProof recomputes the root.
type Proof struct {
	// Index is the leaf position the proof authenticates.
	Index int `json:"index"`
	// Siblings holds one sibling hash per tree level, leaf level first.
	Siblings [][]byte `json:"siblings"`
}

// Proof generates the Verification Object for leaf index i.
func (t *Tree) Proof(i int) (Proof, error) {
	if i < 0 || i >= t.n {
		return Proof{}, fmt.Errorf("%w: %d (n=%d)", ErrIndexRange, i, t.n)
	}
	p := Proof{Index: i, Siblings: make([][]byte, 0, log2(t.cap))}
	for pos := t.cap + i; pos > 1; pos /= 2 {
		p.Siblings = append(p.Siblings, append([]byte(nil), t.nodes[pos^1]...))
	}
	return p, nil
}

// VerifyProof checks that leafHash at p.Index, combined with the sibling
// hashes in p, reproduces root. This is the auditor-side computation of
// §2.3/§4.2.2: hash the item's content (from the log block), fold in the VO
// sent by the server, and compare against the root stored in the block.
func VerifyProof(root, leafHash []byte, p Proof) bool {
	if p.Index < 0 {
		return false
	}
	h := append([]byte(nil), leafHash...)
	idx := p.Index
	for _, sib := range p.Siblings {
		if idx%2 == 0 {
			h = interiorHash(h, sib)
		} else {
			h = interiorHash(sib, h)
		}
		idx /= 2
	}
	if idx != 0 {
		return false // proof too short for the claimed index
	}
	return bytes.Equal(h, root)
}

// RootFromProof folds leafHash through the proof and returns the computed
// root without comparing it, letting the auditor report both the expected
// and the computed root in a finding.
func RootFromProof(leafHash []byte, p Proof) []byte {
	h := append([]byte(nil), leafHash...)
	idx := p.Index
	for _, sib := range p.Siblings {
		if idx%2 == 0 {
			h = interiorHash(h, sib)
		} else {
			h = interiorHash(sib, h)
		}
		idx /= 2
	}
	return h
}

func log2(n int) int {
	k := 0
	for n > 1 {
		n /= 2
		k++
	}
	return k
}
