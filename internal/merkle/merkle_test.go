package merkle

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func contents(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("item-%04d", i))
	}
	return out
}

func TestTreeSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 100, 1000} {
		tree := NewFromContents(contents(n))
		if tree.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tree.Len())
		}
		if len(tree.Root()) != HashSize {
			t.Fatalf("n=%d: root size %d", n, len(tree.Root()))
		}
	}
}

func TestRootDependsOnEveryLeaf(t *testing.T) {
	base := NewFromContents(contents(10)).Root()
	for i := 0; i < 10; i++ {
		c := contents(10)
		c[i] = []byte("mutated")
		if bytes.Equal(NewFromContents(c).Root(), base) {
			t.Errorf("mutating leaf %d did not change root", i)
		}
	}
}

func TestRootDependsOnOrder(t *testing.T) {
	c := contents(4)
	r1 := NewFromContents(c).Root()
	c[0], c[1] = c[1], c[0]
	r2 := NewFromContents(c).Root()
	if bytes.Equal(r1, r2) {
		t.Error("leaf order does not affect root")
	}
}

func TestLeafDomainSeparation(t *testing.T) {
	// A leaf must never collide with an interior node even for crafted
	// content: hashing interior bytes as leaf content yields different
	// digests because of the prefixes.
	left := LeafHash([]byte("a"))
	right := LeafHash([]byte("b"))
	interior := interiorHash(left, right)
	crafted := append(append([]byte{}, left...), right...)
	if bytes.Equal(LeafHash(crafted), interior) {
		t.Error("leaf/interior domain separation broken")
	}
}

func TestUpdateMatchesRebuild(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 13, 64, 100} {
		c := contents(n)
		tree := NewFromContents(c)
		rng := rand.New(rand.NewSource(int64(n)))
		for step := 0; step < 50; step++ {
			i := rng.Intn(n)
			c[i] = []byte(fmt.Sprintf("upd-%d-%d", step, i))
			if _, err := tree.Update(i, LeafHash(c[i])); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(tree.Root(), NewFromContents(c).Root()) {
				t.Fatalf("n=%d step=%d: incremental root diverges from rebuild", n, step)
			}
		}
	}
}

func TestUpdateRevert(t *testing.T) {
	c := contents(16)
	tree := NewFromContents(c)
	before := tree.Root()
	old, err := tree.Update(5, LeafHash([]byte("temp")))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(tree.Root(), before) {
		t.Fatal("update did not change root")
	}
	if _, err := tree.Update(5, old); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tree.Root(), before) {
		t.Fatal("revert did not restore root")
	}
}

func TestUpdateOutOfRange(t *testing.T) {
	tree := NewFromContents(contents(4))
	if _, err := tree.Update(4, LeafHash([]byte("x"))); err == nil {
		t.Error("update past end accepted")
	}
	if _, err := tree.Update(-1, LeafHash([]byte("x"))); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := tree.Proof(99); err == nil {
		t.Error("proof past end accepted")
	}
	if _, err := tree.Leaf(99); err == nil {
		t.Error("leaf past end accepted")
	}
}

func TestProofVerifies(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 33, 100} {
		c := contents(n)
		tree := NewFromContents(c)
		root := tree.Root()
		for i := 0; i < n; i++ {
			p, err := tree.Proof(i)
			if err != nil {
				t.Fatal(err)
			}
			if !VerifyProof(root, LeafHash(c[i]), p) {
				t.Errorf("n=%d: proof for leaf %d does not verify", n, i)
			}
			if got := RootFromProof(LeafHash(c[i]), p); !bytes.Equal(got, root) {
				t.Errorf("n=%d: RootFromProof mismatch for leaf %d", n, i)
			}
		}
	}
}

func TestProofRejectsWrongContent(t *testing.T) {
	c := contents(16)
	tree := NewFromContents(c)
	root := tree.Root()
	p, err := tree.Proof(3)
	if err != nil {
		t.Fatal(err)
	}
	if VerifyProof(root, LeafHash([]byte("forged")), p) {
		t.Error("forged leaf content verified")
	}
	// Wrong index: same content, different position.
	p2, err := tree.Proof(4)
	if err != nil {
		t.Fatal(err)
	}
	if VerifyProof(root, LeafHash(c[3]), p2) {
		t.Error("proof for another index verified")
	}
	// Tampered sibling.
	p.Siblings[0][0] ^= 0xff
	if VerifyProof(root, LeafHash(c[3]), p) {
		t.Error("tampered sibling verified")
	}
}

func TestProofRejectsTruncation(t *testing.T) {
	c := contents(16)
	tree := NewFromContents(c)
	root := tree.Root()
	p, err := tree.Proof(3)
	if err != nil {
		t.Fatal(err)
	}
	p.Siblings = p.Siblings[:len(p.Siblings)-1]
	if VerifyProof(root, LeafHash(c[3]), p) {
		t.Error("truncated proof verified")
	}
	if VerifyProof(root, LeafHash(c[3]), Proof{Index: -1}) {
		t.Error("negative index verified")
	}
}

func TestProofSizeLogarithmic(t *testing.T) {
	// Paper §2.3: VO size is log2(n).
	tree := NewFromContents(contents(1024))
	p, err := tree.Proof(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Siblings) != 10 {
		t.Errorf("proof for n=1024 has %d siblings, want 10", len(p.Siblings))
	}
}

// Property: any proof from any tree verifies against that tree's root, and
// stops verifying after any single-byte corruption of the leaf content.
func TestProofQuick(t *testing.T) {
	type input struct {
		N, I int
		Mut  byte
	}
	f := func(in input) bool {
		n := in.N%60 + 1
		i := in.I % n
		if i < 0 {
			i = -i
		}
		c := contents(n)
		tree := NewFromContents(c)
		p, err := tree.Proof(i)
		if err != nil {
			return false
		}
		if !VerifyProof(tree.Root(), LeafHash(c[i]), p) {
			return false
		}
		forged := append([]byte(nil), c[i]...)
		forged[0] ^= in.Mut | 1
		return !VerifyProof(tree.Root(), LeafHash(forged), p)
	}
	cfg := &quick.Config{MaxCount: 200, Values: func(vals []reflect.Value, r *rand.Rand) {
		vals[0] = reflect.ValueOf(input{N: r.Intn(1000), I: r.Intn(1000), Mut: byte(r.Intn(256))})
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
