package merkle

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func buildTree(n int) (*Tree, [][]byte) {
	contents := make([][]byte, n)
	for i := range contents {
		contents[i] = []byte(fmt.Sprintf("leaf-%04d", i))
	}
	hashes := make([][]byte, n)
	for i, c := range contents {
		hashes[i] = LeafHash(c)
	}
	return New(hashes), hashes
}

func TestMultiProofRoundTripSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 9, 64, 100} {
		tree, hashes := buildTree(n)
		root := tree.Root()
		for _, k := range []int{1, 2, 3, n} {
			if k > n {
				continue
			}
			indices := rand.New(rand.NewSource(int64(n*100 + k))).Perm(n)[:k]
			mp, err := tree.MultiProof(indices)
			if err != nil {
				t.Fatalf("n=%d k=%d: %v", n, k, err)
			}
			leaves := make([][]byte, len(mp.Indices))
			for i, idx := range mp.Indices {
				leaves[i] = hashes[idx]
			}
			if !VerifyMultiProof(root, leaves, mp) {
				t.Fatalf("n=%d k=%d: valid multiproof rejected", n, k)
			}
		}
	}
}

// TestMultiProofAgreesWithSingleProofs checks a full-coverage batch needs
// no siblings at all, and that every single-leaf multiproof carries exactly
// the siblings of the classic proof.
func TestMultiProofAgreesWithSingleProofs(t *testing.T) {
	tree, hashes := buildTree(8)
	root := tree.Root()

	all := []int{0, 1, 2, 3, 4, 5, 6, 7}
	mp, err := tree.MultiProof(all)
	if err != nil {
		t.Fatal(err)
	}
	if len(mp.Siblings) != 0 {
		t.Fatalf("full batch carries %d siblings, want 0", len(mp.Siblings))
	}
	if !VerifyMultiProof(root, hashes, mp) {
		t.Fatal("full-coverage multiproof rejected")
	}

	for i := 0; i < 8; i++ {
		mp, err := tree.MultiProof([]int{i})
		if err != nil {
			t.Fatal(err)
		}
		p, err := tree.Proof(i)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(mp.Siblings, p.Siblings) {
			t.Fatalf("leaf %d: multiproof siblings differ from classic proof", i)
		}
	}
}

// TestMultiProofAmortizes pins the point of batching: a batch of k leaves
// carries strictly fewer siblings than k separate proofs.
func TestMultiProofAmortizes(t *testing.T) {
	tree, _ := buildTree(1024)
	indices := []int{0, 1, 2, 3, 500, 501, 900, 901}
	mp, err := tree.MultiProof(indices)
	if err != nil {
		t.Fatal(err)
	}
	single := 0
	for range indices {
		single += 10 // log2(1024) siblings each
	}
	if len(mp.Siblings) >= single {
		t.Fatalf("multiproof carries %d siblings, want < %d", len(mp.Siblings), single)
	}
}

func TestMultiProofRejectsTampering(t *testing.T) {
	tree, hashes := buildTree(16)
	root := tree.Root()
	indices := []int{2, 3, 11}
	leaves := func(mp MultiProof) [][]byte {
		out := make([][]byte, len(mp.Indices))
		for i, idx := range mp.Indices {
			out[i] = hashes[idx]
		}
		return out
	}
	fresh := func() MultiProof {
		mp, err := tree.MultiProof(indices)
		if err != nil {
			t.Fatal(err)
		}
		return mp
	}

	if mp := fresh(); !VerifyMultiProof(root, leaves(mp), mp) {
		t.Fatal("sanity: valid proof rejected")
	}
	// Tampered sibling.
	mp := fresh()
	mp.Siblings[0][0] ^= 1
	if VerifyMultiProof(root, leaves(mp), mp) {
		t.Fatal("accepted tampered sibling")
	}
	// Dropped sibling.
	mp = fresh()
	mp.Siblings = mp.Siblings[:len(mp.Siblings)-1]
	if VerifyMultiProof(root, leaves(mp), mp) {
		t.Fatal("accepted truncated sibling list")
	}
	// Extra sibling.
	mp = fresh()
	mp.Siblings = append(mp.Siblings, mp.Siblings[0])
	if VerifyMultiProof(root, leaves(mp), mp) {
		t.Fatal("accepted padded sibling list")
	}
	// Shifted index.
	mp = fresh()
	mp.Indices[0] = 1
	if VerifyMultiProof(root, leaves(mp), mp) {
		t.Fatal("accepted shifted index")
	}
	// Wrong depth (proof for a different tree size).
	mp = fresh()
	mp.Depth++
	if VerifyMultiProof(root, leaves(mp), mp) {
		t.Fatal("accepted wrong depth")
	}
	// Non-ascending indices.
	mp = fresh()
	mp.Indices[0], mp.Indices[1] = mp.Indices[1], mp.Indices[0]
	if VerifyMultiProof(root, leaves(mp), mp) {
		t.Fatal("accepted unsorted indices")
	}
	// Tampered leaf hash.
	mp = fresh()
	lh := leaves(mp)
	lh[1] = LeafHash([]byte("forged"))
	if VerifyMultiProof(root, lh, mp) {
		t.Fatal("accepted forged leaf")
	}
	// Absurd depth from untrusted input must not allocate or overflow.
	mp = fresh()
	mp.Depth = 63
	if VerifyMultiProof(root, leaves(mp), mp) {
		t.Fatal("accepted absurd depth")
	}
}

func TestMultiProofRequestValidation(t *testing.T) {
	tree, _ := buildTree(8)
	if _, err := tree.MultiProof(nil); !errors.Is(err, ErrNoIndices) {
		t.Fatalf("empty request: %v", err)
	}
	if _, err := tree.MultiProof([]int{1, 1}); !errors.Is(err, ErrDupIndex) {
		t.Fatalf("duplicate request: %v", err)
	}
	if _, err := tree.MultiProof([]int{8}); !errors.Is(err, ErrIndexRange) {
		t.Fatalf("out of range request: %v", err)
	}
}

func TestMultiProofBinaryRoundTrip(t *testing.T) {
	tree, _ := buildTree(100)
	mp, err := tree.MultiProof([]int{0, 17, 63, 99})
	if err != nil {
		t.Fatal(err)
	}
	data := mp.AppendBinary(nil)
	var out MultiProof
	if err := out.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mp, out) {
		t.Fatalf("round trip mismatch:\n in: %#v\nout: %#v", mp, out)
	}
	for i := 0; i < len(data); i += 3 {
		var tr MultiProof
		if err := tr.UnmarshalBinary(data[:i]); err == nil && i < len(data) {
			t.Fatalf("accepted truncation at %d/%d", i, len(data))
		}
	}
}

// TestMultiProofAfterUpdates ensures proofs track the live tree.
func TestMultiProofAfterUpdates(t *testing.T) {
	tree, hashes := buildTree(32)
	newLeaf := LeafHash([]byte("updated"))
	if _, err := tree.Update(5, newLeaf); err != nil {
		t.Fatal(err)
	}
	hashes[5] = newLeaf
	mp, err := tree.MultiProof([]int{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	leaves := [][]byte{hashes[4], hashes[5], hashes[6]}
	if !VerifyMultiProof(tree.Root(), leaves, mp) {
		t.Fatal("multiproof stale after update")
	}
}
