package merkle

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"repro/internal/binenc"
)

// MultiProof is a batched Verification Object: one proof authenticating
// several leaves of the same tree at once. Where k independent Proofs
// carry k·log₂(n) sibling hashes, a MultiProof carries only the siblings
// *outside* the union of the k leaf-to-root paths — shared ancestors are
// recomputed once and siblings that are themselves on a proven path are
// omitted entirely. For a batch of neighboring hot items this amortizes
// most of the hashing and bandwidth of the read path (the "batched proof
// variant" served by wire.VerifiedReadResp).
//
// Siblings are ordered deterministically: level by level from the leaves
// up, and left-to-right within a level — the exact order Verify consumes
// them in, so the encoding needs no per-hash position labels.
type MultiProof struct {
	// Indices are the proven leaf positions, strictly ascending.
	Indices []int `json:"indices"`
	// Depth is the number of tree levels (log₂ of the leaf capacity); it
	// fixes the path length for every leaf, letting the verifier detect a
	// proof built for a differently-sized tree.
	Depth int `json:"depth"`
	// Siblings are the hashes outside the union of the proven paths, in
	// consumption order.
	Siblings [][]byte `json:"siblings"`
}

// Errors returned by multiproof construction.
var (
	ErrNoIndices  = errors.New("merkle: multiproof needs at least one leaf index")
	ErrDupIndex   = errors.New("merkle: duplicate leaf index in multiproof request")
	errProofShape = errors.New("merkle: multiproof shape mismatch")
)

// MultiProof generates the batched Verification Object for the given leaf
// indices (in any order; duplicates rejected).
func (t *Tree) MultiProof(indices []int) (MultiProof, error) {
	if len(indices) == 0 {
		return MultiProof{}, ErrNoIndices
	}
	sorted := append([]int(nil), indices...)
	sort.Ints(sorted)
	for i, idx := range sorted {
		if idx < 0 || idx >= t.n {
			return MultiProof{}, fmt.Errorf("%w: %d (n=%d)", ErrIndexRange, idx, t.n)
		}
		if i > 0 && idx == sorted[i-1] {
			return MultiProof{}, fmt.Errorf("%w: %d", ErrDupIndex, idx)
		}
	}

	mp := MultiProof{Indices: sorted, Depth: log2(t.cap)}
	// positions holds the heap positions of the known nodes at the current
	// level, ascending. A node's sibling is emitted unless the sibling is
	// itself known (then the pair combines without any transmitted hash).
	positions := make([]int, len(sorted))
	for i, idx := range sorted {
		positions[i] = t.cap + idx
	}
	for level := 0; level < mp.Depth; level++ {
		next := positions[:0]
		for i := 0; i < len(positions); i++ {
			pos := positions[i]
			if i+1 < len(positions) && positions[i+1] == pos^1 {
				// Sibling pair both known: combine, consume both.
				i++
			} else {
				mp.Siblings = append(mp.Siblings, append([]byte(nil), t.nodes[pos^1]...))
			}
			next = append(next, pos/2)
		}
		positions = next
	}
	return mp, nil
}

// VerifyMultiProof checks that the leaf hashes (one per mp.Indices entry,
// same order) combined with the proof's siblings reproduce root. It is the
// batched form of VerifyProof: the verifier replays the same level-by-level
// schedule the prover used, so a proof with missing, extra or re-ordered
// hashes fails rather than verifying something else.
func VerifyMultiProof(root []byte, leafHashes [][]byte, mp MultiProof) bool {
	// Depth 40 ≈ 10¹² leaves bounds untrusted input well past any real
	// shard while keeping 1<<Depth far from overflow.
	if len(mp.Indices) == 0 || len(leafHashes) != len(mp.Indices) || mp.Depth < 0 || mp.Depth > 40 {
		return false
	}
	capacity := 1 << mp.Depth
	type node struct {
		pos  int
		hash []byte
	}
	level := make([]node, len(mp.Indices))
	for i, idx := range mp.Indices {
		if idx < 0 || idx >= capacity {
			return false
		}
		if i > 0 && idx <= mp.Indices[i-1] {
			return false // not strictly ascending
		}
		level[i] = node{pos: capacity + idx, hash: leafHashes[i]}
	}
	sib := 0
	for l := 0; l < mp.Depth; l++ {
		next := level[:0]
		for i := 0; i < len(level); i++ {
			cur := level[i]
			var left, right []byte
			if i+1 < len(level) && level[i+1].pos == cur.pos^1 {
				left, right = cur.hash, level[i+1].hash
				i++
			} else {
				if sib >= len(mp.Siblings) {
					return false
				}
				if cur.pos%2 == 0 {
					left, right = cur.hash, mp.Siblings[sib]
				} else {
					left, right = mp.Siblings[sib], cur.hash
				}
				sib++
			}
			next = append(next, node{pos: cur.pos / 2, hash: interiorHash(left, right)})
		}
		level = next
	}
	if sib != len(mp.Siblings) || len(level) != 1 || level[0].pos != 1 {
		return false
	}
	return bytes.Equal(level[0].hash, root)
}

// AppendBinary appends the multiproof's binary encoding:
// nIndices | indices... | depth | nSiblings | sibling bytes...
func (mp *MultiProof) AppendBinary(buf []byte) []byte {
	buf = binenc.AppendUvarint(buf, uint64(len(mp.Indices)))
	for _, idx := range mp.Indices {
		buf = binenc.AppendUvarint(buf, uint64(idx))
	}
	buf = binenc.AppendUvarint(buf, uint64(mp.Depth))
	buf = binenc.AppendUvarint(buf, uint64(len(mp.Siblings)))
	for _, s := range mp.Siblings {
		buf = binenc.AppendBytes(buf, s)
	}
	return buf
}

// DecodeMultiProof reads an embedded multiproof from r.
func DecodeMultiProof(r *binenc.Reader, mp *MultiProof) error {
	mp.Indices = nil
	if n := r.Count(1); n > 0 {
		mp.Indices = make([]int, n)
		for i := range mp.Indices {
			mp.Indices[i] = int(r.Uvarint())
		}
	}
	mp.Depth = int(r.Uvarint())
	mp.Siblings = nil
	if n := r.Count(1); n > 0 {
		mp.Siblings = make([][]byte, n)
		for i := range mp.Siblings {
			mp.Siblings[i] = r.Bytes()
		}
	}
	return r.Err()
}

// MarshalBinary returns the multiproof's binary encoding.
func (mp *MultiProof) MarshalBinary() ([]byte, error) {
	return mp.AppendBinary(nil), nil
}

// UnmarshalBinary decodes a multiproof from its binary encoding.
func (mp *MultiProof) UnmarshalBinary(data []byte) error {
	r := binenc.NewReader(data)
	if err := DecodeMultiProof(&r, mp); err != nil {
		return fmt.Errorf("merkle: decode multiproof: %w", err)
	}
	if err := r.Done(); err != nil {
		return fmt.Errorf("merkle: decode multiproof: %w", err)
	}
	return nil
}
