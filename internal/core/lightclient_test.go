package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/identity"
	"repro/internal/lightclient"
	"repro/internal/peer"
	"repro/internal/server"
	"repro/internal/txn"
)

// lcCluster builds a small cluster for light-client tests.
func lcCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	if cfg.NumServers == 0 {
		cfg.NumServers = 3
	}
	if cfg.ItemsPerShard == 0 {
		cfg.ItemsPerShard = 32
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 1
	}
	cfg.BatchWait = 500 * time.Microsecond
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestLightClientColdSyncAndVerifiedRead is the basic tentpole path: cold
// header sync, then proof-carrying reads whose values match what committed.
func TestLightClientColdSyncAndVerifiedRead(t *testing.T) {
	c := lcCluster(t, Config{})
	ctx := context.Background()
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}

	items := []txn.ItemID{ItemName(0, 1), ItemName(1, 2), ItemName(2, 3)}
	for i, it := range items {
		commitRW(t, ctx, cl, it, "v"+string(rune('a'+i)), true)
	}

	lc, err := c.NewLightClient()
	if err != nil {
		t.Fatal(err)
	}
	tip, err := lc.Sync(ctx)
	if err != nil {
		t.Fatalf("cold sync: %v", err)
	}
	if want := uint64(c.ServerAt(0).Log().Len()); tip != want {
		t.Fatalf("synced to %d, log at %d", tip, want)
	}

	vals, err := lc.ReadVerified(ctx, items...)
	if err != nil {
		t.Fatalf("verified read: %v", err)
	}
	for i, v := range vals {
		if want := "v" + string(rune('a'+i)); string(v.Value) != want {
			t.Fatalf("item %s: got %q, want %q", v.ID, v.Value, want)
		}
	}
	st := lc.Stats()
	if st.HeadersVerified == 0 || st.ReadsVerified != len(items) {
		t.Fatalf("stats: %+v", st)
	}
}

// TestLightClientResumableSync checks sync resumes from a trusted
// checkpoint without re-reading history.
func TestLightClientResumableSync(t *testing.T) {
	c := lcCluster(t, Config{})
	ctx := context.Background()
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	item := ItemName(1, 4)
	commitRW(t, ctx, cl, item, "before", true)

	lc, err := c.NewLightClient()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lc.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	ckptHeight, ckptHash, ok := lc.Checkpoint()
	if !ok {
		t.Fatal("no checkpoint after sync")
	}

	commitRW(t, ctx, cl, item, "after", true)

	// A fresh light client resumes from the checkpoint: only the new
	// headers are fetched and verified.
	ident, err := identity.New("lc-resume", identity.RoleClient, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Registry().Register(ident.Public())
	ep, err := c.newEndpoint(ident, nil)
	if err != nil {
		t.Fatal(err)
	}
	lc2, err := lightclient.New(lightclient.Config{
		PeerConfig: peer.PeerConfig{
			Registry:  c.Registry(),
			Transport: ep,
			Servers:   c.Servers(),
		},
		Layout:           c.Directory(),
		CheckpointHeight: ckptHeight,
		CheckpointHash:   ckptHash,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lc2.Sync(ctx); err != nil {
		t.Fatalf("resumed sync: %v", err)
	}
	if got, want := lc2.SyncedHeight(), uint64(c.ServerAt(0).Log().Len()); got != want {
		t.Fatalf("resumed to %d, want %d", got, want)
	}
	if verified := lc2.Stats().HeadersVerified; verified >= int(lc2.SyncedHeight()) {
		t.Fatalf("resumed client verified %d headers, should verify only the suffix", verified)
	}
	vals, err := lc2.ReadVerified(ctx, item)
	if err != nil {
		t.Fatalf("verified read after resume: %v", err)
	}
	if string(vals[0].Value) != "after" {
		t.Fatalf("got %q, want %q", vals[0].Value, "after")
	}

}

// TestSessionReadVerifiedCommits drives ReadVerified through a full
// transaction: the verified value enters the read set and the transaction
// commits like any other.
func TestSessionReadVerifiedCommits(t *testing.T) {
	c := lcCluster(t, Config{})
	ctx := context.Background()
	plain, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	item := ItemName(2, 7)
	commitRW(t, ctx, plain, item, "seed", true)

	cl, lc, err := c.NewVerifyingClient(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lc.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	s := cl.Begin()
	v, err := s.ReadVerified(ctx, item)
	if err != nil {
		t.Fatalf("session verified read: %v", err)
	}
	if string(v) != "seed" {
		t.Fatalf("got %q, want %q", v, "seed")
	}
	if err := s.Write(ctx, item, []byte("seed2")); err != nil {
		t.Fatal(err)
	}
	res, err := s.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed {
		t.Fatal("transaction with verified read aborted")
	}
	report, err := c.Audit(ctx, audit.Options{CheckDatastore: true})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		t.Fatalf("audit not clean: %v", report.Findings)
	}
}

// TestReadVerifiedCatchesStaleReadsAtReadTime is the trust-model upgrade
// the subsystem exists for (satellite 1): with the StaleReads fault
// enabled, the plain Read path silently accepts the lie — only a later
// audit maps it to FindingIncorrectRead — while ReadVerified rejects it
// immediately with ErrIncorrectRead.
func TestReadVerifiedCatchesStaleReadsAtReadTime(t *testing.T) {
	c := lcCluster(t, Config{NumServers: 4})
	ctx := context.Background()
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	victim := ItemName(1, 3) // owned by s01

	commitRW(t, ctx, cl, victim, "honest-1", true)
	commitRW(t, ctx, cl, victim, "honest-2", true)
	commitRW(t, ctx, cl, ItemName(2, 1), "bystander", true) // a root for the honest shard

	// s01 turns malicious: it serves the previous value with up-to-date
	// timestamps (paper §5 Scenario 1).
	c.ServerAt(1).SetFaults(server.Faults{StaleReads: true})

	// Plain read: the lie is accepted at read time...
	s := cl.Begin()
	got, err := s.Read(ctx, victim)
	if err != nil {
		t.Fatalf("plain read: %v", err)
	}
	if string(got) != "honest-1" {
		t.Fatalf("expected the stale lie %q from the faulty server, got %q", "honest-1", got)
	}
	// ...and only an audit of the poisoned log detects it (Lemma 1).
	if err := s.Write(ctx, victim, []byte("poisoned")); err != nil {
		t.Fatal(err)
	}
	if res, err := s.Commit(ctx); err != nil || !res.Committed {
		t.Fatalf("poisoned commit: %v committed=%v", err, res != nil && res.Committed)
	}
	report, err := c.Audit(ctx, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.ByType(audit.FindingIncorrectRead)) == 0 {
		t.Fatalf("audit missed the incorrect read; findings: %v", report.Findings)
	}

	// Verified read: the same lie is rejected the moment it is served,
	// with the online analogue of that finding.
	lc, err := c.NewLightClient()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lc.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := lc.ReadVerified(ctx, victim); !errors.Is(err, lightclient.ErrIncorrectRead) {
		t.Fatalf("verified read of stale value: got %v, want ErrIncorrectRead", err)
	}

	// An honest shard still reads fine through the same light client.
	if _, err := lc.ReadVerified(ctx, ItemName(2, 1)); err != nil {
		t.Fatalf("verified read from honest server: %v", err)
	}
}

// TestReadVerifiedCatchesCorruptedDatastore: a corrupted apply (Scenario 3)
// diverges the shard from its committed root, so proofs generated from the
// corrupted state fail against the header chain immediately — no
// CheckDatastore audit needed.
func TestReadVerifiedCatchesCorruptedDatastore(t *testing.T) {
	c := lcCluster(t, Config{NumServers: 4})
	ctx := context.Background()
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	victim := ItemName(2, 5)
	commitRW(t, ctx, cl, victim, "honest", true)

	c.ServerAt(2).SetFaults(server.Faults{CorruptApplyValue: []byte("evil")})
	commitRW(t, ctx, cl, victim, "target", true)

	lc, err := c.NewLightClient()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lc.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := lc.ReadVerified(ctx, victim); !errors.Is(err, lightclient.ErrIncorrectRead) {
		t.Fatalf("verified read of corrupted item: got %v, want ErrIncorrectRead", err)
	}
}

// TestPinnedSnapshotReads: multi-versioned shards serve proof-carrying
// reads pinned at a historical height; the proof verifies against the root
// committed at that height and returns the then-current value.
func TestPinnedSnapshotReads(t *testing.T) {
	c := lcCluster(t, Config{MultiVersion: true})
	ctx := context.Background()
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	item := ItemName(0, 9)

	res1 := commitRW(t, ctx, cl, item, "epoch-1", true)
	commitRW(t, ctx, cl, item, "epoch-2", true)
	commitRW(t, ctx, cl, item, "epoch-3", true)

	lc, err := c.NewLightClient()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lc.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	// Current read sees the newest value.
	vals, err := lc.ReadVerified(ctx, item)
	if err != nil {
		t.Fatal(err)
	}
	if string(vals[0].Value) != "epoch-3" {
		t.Fatalf("current read: got %q", vals[0].Value)
	}

	// Pinned at the first commit's height: the then-current state.
	pin := res1.Block.Height
	old, err := lc.ReadPinned(ctx, pin, item)
	if err != nil {
		t.Fatalf("pinned read: %v", err)
	}
	if string(old[0].Value) != "epoch-1" {
		t.Fatalf("pinned read at %d: got %q, want %q", pin, old[0].Value, "epoch-1")
	}
	if old[0].Height != pin {
		t.Fatalf("pinned read authenticated at %d, want %d", old[0].Height, pin)
	}

	// Single-versioned shards refuse historical pins (served as an error,
	// not a lie).
	c2 := lcCluster(t, Config{})
	cl2, err := c2.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	commitRW(t, ctx, cl2, item, "sv-1", true)
	commitRW(t, ctx, cl2, item, "sv-2", true)
	lc2, err := c2.NewLightClient()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lc2.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := lc2.ReadPinned(ctx, 0, item); err == nil {
		t.Fatal("single-versioned shard served a historical pinned read")
	}
}

// TestVerifiedReadBatch reads a batch from one shard and checks the proof
// amortization reaches the client (one response, one multiproof).
func TestVerifiedReadBatch(t *testing.T) {
	c := lcCluster(t, Config{})
	ctx := context.Background()
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	var batch []txn.ItemID
	for i := 0; i < 8; i++ {
		batch = append(batch, ItemName(0, i))
	}
	commitRW(t, ctx, cl, batch[0], "x", true) // establish a root for s00

	lc, err := c.NewLightClient()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lc.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	vals, err := lc.ReadVerified(ctx, batch...)
	if err != nil {
		t.Fatalf("batched read: %v", err)
	}
	if len(vals) != len(batch) {
		t.Fatalf("got %d values for %d items", len(vals), len(batch))
	}
	for i, v := range vals {
		if v.ID != batch[i] {
			t.Fatalf("result %d out of order: %s", i, v.ID)
		}
	}
	if st := lc.Stats(); st.ReadsVerified != len(batch) {
		t.Fatalf("stats: %+v", st)
	}
}

// TestLightClientOverTCPDetectsTampering is the end-to-end acceptance test
// over real TCP: a light client cold-syncs headers, performs verified
// reads matching a concurrent audit's view, then each of the three
// tampering classes — value, proof, header — is detected with its own
// distinct error.
func TestLightClientOverTCPDetectsTampering(t *testing.T) {
	c, err := NewCluster(Config{
		NumServers:    3,
		ItemsPerShard: 32,
		BatchSize:     2,
		BatchWait:     time.Millisecond,
		TCP:           true,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()
	ctx := context.Background()

	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	items := []txn.ItemID{ItemName(0, 3), ItemName(1, 5), ItemName(2, 7)}
	want := map[txn.ItemID]string{}
	for i, it := range items {
		val := "tcp-" + string(rune('a'+i))
		commitRW(t, ctx, cl, it, val, true)
		want[it] = val
	}

	// Cold sync over TCP.
	lc, err := c.NewLightClient()
	if err != nil {
		t.Fatal(err)
	}
	tip, err := lc.Sync(ctx)
	if err != nil {
		t.Fatalf("cold sync over tcp: %v", err)
	}
	if wantTip := uint64(c.ServerAt(0).Log().Len()); tip != wantTip {
		t.Fatalf("synced %d, want %d", tip, wantTip)
	}

	// Verified reads agree with a concurrent audit's authoritative view.
	vals, err := lc.ReadVerified(ctx, items...)
	if err != nil {
		t.Fatalf("verified reads over tcp: %v", err)
	}
	for _, v := range vals {
		if want[v.ID] != string(v.Value) {
			t.Fatalf("item %s: got %q, want %q", v.ID, v.Value, want[v.ID])
		}
	}
	report, err := c.Audit(ctx, audit.Options{CheckDatastore: true})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		t.Fatalf("audit found: %v", report.Findings)
	}
	if got := uint64(len(report.Authoritative)); got != tip {
		t.Fatalf("audit sees %d blocks, light client synced %d", got, tip)
	}

	// (1) Tampered value: the server serves a superseded value under a
	// valid proof of the real state → ErrIncorrectRead (and specifically
	// not a proof-shape or header error).
	c.ServerAt(1).SetFaults(server.Faults{StaleReads: true})
	if _, err := lc.ReadVerified(ctx, items[1]); !errors.Is(err, lightclient.ErrIncorrectRead) {
		t.Fatalf("tampered value: got %v, want ErrIncorrectRead", err)
	}
	c.ServerAt(1).SetFaults(server.Faults{})

	// (2) Tampered proof → ErrBadProof: the proof shape contradicts the
	// layout the client derives independently.
	c.ServerAt(1).SetFaults(server.Faults{TamperVerifiedProof: true})
	if _, err := lc.ReadVerified(ctx, items[1]); !errors.Is(err, lightclient.ErrBadProof) {
		t.Fatalf("tampered proof: got %v, want ErrBadProof", err)
	}
	c.ServerAt(1).SetFaults(server.Faults{})

	// (3) Tampered header → ErrBadHeader from sync, cache unmoved.
	c.ServerAt(0).SetFaults(server.Faults{TamperHeaders: true})
	fresh, err := c.NewLightClient()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Sync(ctx); !errors.Is(err, lightclient.ErrBadHeader) {
		t.Fatalf("tampered headers: got %v, want ErrBadHeader", err)
	}
	if fresh.SyncedHeight() != 0 {
		t.Fatalf("tampered headers advanced the cache to %d", fresh.SyncedHeight())
	}
	// An honest source recovers the same client.
	if _, err := fresh.SyncFrom(ctx, ServerName(1)); err != nil {
		t.Fatalf("sync from honest source: %v", err)
	}
	c.ServerAt(0).SetFaults(server.Faults{})

	// The cluster still works end to end after all faults are cleared.
	if _, err := lc.ReadVerified(ctx, items...); err != nil {
		t.Fatalf("verified reads after recovery: %v", err)
	}
}
