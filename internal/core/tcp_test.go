package core

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/audit"
)

// TestClusterOverTCP runs the full stack — execution, TFCommit, logging,
// audit — over real loopback TCP sockets.
func TestClusterOverTCP(t *testing.T) {
	c, err := NewCluster(Config{
		NumServers:    3,
		ItemsPerShard: 32,
		BatchSize:     2,
		BatchWait:     time.Millisecond,
		TCP:           true,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()
	ctx := context.Background()

	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		s := cl.Begin()
		item := ItemName(i%3, i%7)
		if _, err := s.Read(ctx, item); err != nil {
			t.Fatalf("read over tcp: %v", err)
		}
		if err := s.Write(ctx, item, []byte{byte('a' + i)}); err != nil {
			t.Fatalf("write over tcp: %v", err)
		}
		res, err := s.Commit(ctx)
		if err != nil {
			t.Fatalf("commit over tcp: %v", err)
		}
		if !res.Committed {
			t.Fatalf("txn %d aborted", i)
		}
	}

	// Logs replicated identically across TCP nodes.
	ref := c.ServerAt(0).Log()
	for _, id := range c.Servers() {
		l := c.Server(id).Log()
		if l.Len() != ref.Len() || !bytes.Equal(l.TipHash(), ref.TipHash()) {
			t.Errorf("server %s log diverges", id)
		}
	}

	report, err := c.Audit(ctx, audit.Options{CheckDatastore: true})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		for _, f := range report.Findings {
			t.Errorf("finding: %s", f)
		}
	}
}
