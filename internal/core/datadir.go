package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/identity"
)

// serverKeysFile is where a durable cluster persists its server identities.
// Keys must survive restarts: the recovered log's collective signatures
// verify only against the keys that produced them, so a restarted cluster
// must come back as the *same* servers (paper §3.1's public-key
// infrastructure is long-lived; fresh keys per boot would make every stored
// co-sign unverifiable and recovery impossible).
const serverKeysFile = "server-keys.json"

// loadOrCreateServerIdents returns the n persistent server identities of a
// data directory, generating and saving them on first boot.
func loadOrCreateServerIdents(dataDir string, n int) ([]*identity.Identity, error) {
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return nil, fmt.Errorf("core: data dir: %w", err)
	}
	path := filepath.Join(dataDir, serverKeysFile)
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		var files []identity.KeyFile
		if err := json.Unmarshal(raw, &files); err != nil {
			return nil, fmt.Errorf("core: parse %s: %w", path, err)
		}
		if len(files) != n {
			return nil, fmt.Errorf("core: %s holds %d server identities, cluster wants %d", path, len(files), n)
		}
		idents := make([]*identity.Identity, n)
		for i, kf := range files {
			if kf.ID != ServerName(i) {
				return nil, fmt.Errorf("core: %s entry %d is %q, want %q", path, i, kf.ID, ServerName(i))
			}
			ident, err := identity.Import(kf)
			if err != nil {
				return nil, fmt.Errorf("core: %s: %w", path, err)
			}
			idents[i] = ident
		}
		return idents, nil
	case os.IsNotExist(err):
		idents := make([]*identity.Identity, n)
		files := make([]identity.KeyFile, n)
		for i := 0; i < n; i++ {
			ident, err := identity.New(ServerName(i), identity.RoleServer, nil)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			idents[i] = ident
			files[i] = ident.Export()
		}
		raw, err := json.MarshalIndent(files, "", "  ")
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if err := os.WriteFile(path, raw, 0o600); err != nil {
			return nil, fmt.Errorf("core: save %s: %w", path, err)
		}
		return idents, nil
	default:
		return nil, fmt.Errorf("core: read %s: %w", path, err)
	}
}
