package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestCommitSpanTreeComplete drives one transaction through a real cluster
// and reconstructs its trace: the root span minted at client submit must
// reach the cohorts through the authenticated frames and come back as ONE
// tree — an orphaned span means the context was dropped somewhere on the
// commit path.
func TestCommitSpanTreeComplete(t *testing.T) {
	col := &obs.Collector{}
	o := &obs.Obs{
		Metrics: obs.NewRegistry(),
		Tracer:  obs.NewTracer(obs.TracerConfig{Sink: col, Seed: 7}),
	}
	c := testCluster(t, Config{Obs: o})
	ctx := context.Background()

	cl, err := c.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	s := cl.Begin()
	if err := s.Write(ctx, ItemName(0, 1), []byte("traced")); err != nil {
		t.Fatalf("write: %v", err)
	}
	res, err := s.Commit(ctx)
	if err != nil || !res.Committed {
		t.Fatalf("commit: %v %+v", err, res)
	}

	spans := col.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans exported")
	}
	roots, orphans := obs.BuildSpanTree(spans)
	if len(orphans) != 0 {
		for _, o := range orphans {
			t.Errorf("orphaned span %s (parent %s missing)", o.Name, o.Parent)
		}
		t.Fatalf("%d spans lost their parent", len(orphans))
	}
	if len(roots) != 1 {
		var names []string
		for _, r := range roots {
			names = append(names, r.Rec.Name)
		}
		t.Fatalf("expected one root (client.commit), got %d: %v", len(roots), names)
	}
	root := roots[0]
	if root.Rec.Name != "client.commit" {
		t.Fatalf("root span = %q, want client.commit", root.Rec.Name)
	}

	// Every span of the tree belongs to the root's trace, and the tree
	// reaches from the client through the coordinator phases down to the
	// cohorts' apply.
	seen := map[string]int{}
	root.Walk(func(n *obs.SpanNode) {
		seen[n.Rec.Name]++
		if n.Rec.Trace != root.Rec.Trace {
			t.Errorf("span %s has trace %s, want %s", n.Rec.Name, n.Rec.Trace, root.Rec.Trace)
		}
		if n.Rec.DurUS < 0 {
			t.Errorf("span %s has negative duration %d", n.Rec.Name, n.Rec.DurUS)
		}
	})
	for _, want := range []string{
		"client.commit", "batcher.terminate", "tfcommit.round",
		"tfcommit.vote", "tfcommit.challenge", "tfcommit.cosign", "tfcommit.decision",
		"cohort.vote", "cohort.challenge", "cohort.decide", "cohort.apply",
	} {
		if seen[want] == 0 {
			t.Errorf("span %q missing from the commit trace (have %v)", want, seen)
		}
	}
	// Each of the 3 cohorts votes, answers the challenge and applies.
	if seen["cohort.vote"] != 3 || seen["cohort.apply"] != 3 {
		t.Errorf("cohort fan-out: vote=%d apply=%d, want 3 each", seen["cohort.vote"], seen["cohort.apply"])
	}
}

// TestClusterMetricsAggregateAllServers checks that a cluster without an
// injected Obs still mints a working registry and that one exposition
// covers every server's commit-path instruments, labeled per server.
func TestClusterMetricsAggregateAllServers(t *testing.T) {
	c := testCluster(t, Config{})
	ctx := context.Background()
	cl, err := c.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	s := cl.Begin()
	if err := s.Write(ctx, ItemName(0, 2), []byte("metered")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if res, err := s.Commit(ctx); err != nil || !res.Committed {
		t.Fatalf("commit: %v %+v", err, res)
	}

	var b strings.Builder
	if err := c.Metrics().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`fides_tfcommit_rounds_total{decision="commit",server="s00"} 1`,
		`fides_client_commit_seconds_count 1`,
		`fides_server_log_height{server="s01"} 1`,
		`fides_batcher_block_txns_count{server="s00"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Per-phase histograms must have fired for all four phases.
	for _, phase := range []string{"vote", "challenge", "cosign", "decision"} {
		if !strings.Contains(out, `fides_tfcommit_phase_seconds_count{phase="`+phase+`",server="s00"} 1`) {
			t.Errorf("phase histogram %q did not record (output:\n%s)", phase, out)
		}
	}
}
