package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/durable"
	"repro/internal/identity"
	"repro/internal/txn"
)

// durableConfig is the shared configuration of the recovery tests: small
// shards, durability on, a snapshot cadence low enough to exercise the
// snapshot fast path.
func durableConfig(dataDir string) Config {
	return Config{
		NumServers:    3,
		ItemsPerShard: 32,
		BatchSize:     2,
		BatchWait:     500 * time.Microsecond,
		DataDir:       dataDir,
		SnapshotEvery: 2,
	}
}

// commitSome drives n committed transactions through fresh clients,
// spreading writes across all shards, and returns the values written.
func commitSome(t *testing.T, c *Cluster, n, from int) map[txn.ItemID][]byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	written := make(map[txn.ItemID][]byte)
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	for i := from; i < from+n; i++ {
		item := ItemName(i%3, i%8)
		val := []byte(fmt.Sprintf("val-%d", i))
		// Retry through rejections (stale timestamps after recovery) and
		// OCC aborts, like a real client driver.
		for attempt := 0; ; attempt++ {
			if attempt > 200 {
				t.Fatalf("txn %d failed to commit after %d attempts", i, attempt)
			}
			s := cl.Begin()
			if _, err := s.Read(ctx, item); err != nil {
				t.Fatalf("read: %v", err)
			}
			if err := s.Write(ctx, item, val); err != nil {
				t.Fatalf("write: %v", err)
			}
			res, err := s.Commit(ctx)
			if err != nil {
				t.Fatalf("commit: %v", err)
			}
			if res.Committed {
				break
			}
		}
		written[item] = val
	}
	return written
}

// TestKillAndRecoverCluster is the acceptance scenario: a durable cluster
// is killed mid-workload, restarted on the same data directory, and must
// come back with the full shard state and block log, a recovered Merkle
// root matching the last committed block, and a clean post-recovery audit.
func TestKillAndRecoverCluster(t *testing.T) {
	dataDir := t.TempDir()
	cfg := durableConfig(dataDir)

	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	written := commitSome(t, c, 8, 0)

	// Kill while a background client is still hammering the coordinator:
	// in-flight terminations die with the process, committed blocks must
	// not.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx := context.Background()
		cl, err := c.NewClient()
		if err != nil {
			return
		}
		for i := 100; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s := cl.Begin()
			if err := s.Write(ctx, ItemName(i%3, 8+i%8), []byte("inflight")); err != nil {
				return
			}
			if _, err := s.Commit(ctx); err != nil {
				return // batcher closed mid-flight: expected at kill time
			}
		}
	}()
	time.Sleep(5 * time.Millisecond)
	c.Close()
	close(stop)
	wg.Wait()

	heights := make(map[int]int)
	roots := make(map[int][]byte)
	for i := 0; i < cfg.NumServers; i++ {
		heights[i] = c.ServerAt(i).Log().Len()
		roots[i] = c.ServerAt(i).Shard().Root()
	}
	if heights[0] == 0 {
		t.Fatal("no blocks committed before the kill")
	}

	// Restart on the same data directory.
	c2, err := NewCluster(cfg)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer c2.Close()

	for i := 0; i < cfg.NumServers; i++ {
		srv := c2.ServerAt(i)
		if got := srv.Log().Len(); got != heights[i] {
			t.Errorf("server %d recovered %d blocks, want %d", i, got, heights[i])
		}
		if !bytes.Equal(srv.Shard().Root(), roots[i]) {
			t.Errorf("server %d recovered shard root differs from pre-kill root", i)
		}
		// The recovered root must match the last co-signed root in the log.
		var want []byte
		for _, b := range srv.Log().Blocks() {
			if r, ok := b.Roots[srv.ID()]; ok {
				want = r
			}
		}
		if want != nil && !bytes.Equal(srv.Shard().Root(), want) {
			t.Errorf("server %d recovered root does not match its last co-signed root", i)
		}
		if rec := c2.Recovery(srv.ID()); rec == nil {
			t.Errorf("server %d has no recovery info", i)
		} else if len(rec.Warnings) > 0 {
			t.Errorf("server %d recovery warnings: %v", i, rec.Warnings)
		}
	}

	// Recovered values are served to clients.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	cl, err := c2.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	s := cl.Begin()
	for item, val := range written {
		got, err := s.Read(ctx, item)
		if err != nil {
			t.Fatalf("read %s after recovery: %v", item, err)
		}
		if !bytes.Equal(got, val) {
			t.Errorf("item %s = %q after recovery, want %q", item, got, val)
		}
	}

	// A post-recovery audit over the recovered logs and datastores passes.
	report, err := c2.Audit(ctx, audit.Options{CheckDatastore: true})
	if err != nil {
		t.Fatalf("post-recovery audit: %v", err)
	}
	if !report.Clean() {
		t.Fatalf("post-recovery audit found: %+v", report.Findings)
	}

	// And the recovered cluster keeps committing — heights continue, new
	// timestamps clear the recovered watermark.
	commitSome(t, c2, 4, 50)
	if got := c2.ServerAt(0).Log().Len(); got <= heights[0] {
		t.Errorf("log did not grow after recovery: %d ≤ %d", got, heights[0])
	}
	report, err = c2.Audit(ctx, audit.Options{CheckDatastore: true})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		t.Fatalf("audit after post-recovery commits found: %+v", report.Findings)
	}
}

// TestRecoverMultiVersionCluster: multi-versioned shards are rebuilt by
// full replay (their history is the block log) and keep serving historical
// audits after recovery.
func TestRecoverMultiVersionCluster(t *testing.T) {
	dataDir := t.TempDir()
	cfg := durableConfig(dataDir)
	cfg.MultiVersion = true

	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	commitSome(t, c, 6, 0)
	c.Close()

	c2, err := NewCluster(cfg)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer c2.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	report, err := c2.Audit(ctx, audit.Options{CheckDatastore: true, MultiVersion: true, Exhaustive: true})
	if err != nil {
		t.Fatalf("exhaustive multi-version audit after recovery: %v", err)
	}
	if !report.Clean() {
		t.Fatalf("audit found: %+v", report.Findings)
	}
}

// TestRecoveryRefusesTamperedWAL: a byte flipped inside a committed WAL
// record — with the CRC recomputed so the damage cannot pass as a torn
// write — must fail cluster startup with a tamper error, never a silently
// shortened or altered log.
func TestRecoveryRefusesTamperedWAL(t *testing.T) {
	dataDir := t.TempDir()
	cfg := durableConfig(dataDir)

	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	commitSome(t, c, 4, 0)
	c.Close()

	// Tamper server s01's first WAL record and fix its CRC.
	seg := filepath.Join(dataDir, "s01", "wal-0000000000000000.seg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	const segHeaderLen, recHeaderLen = 17, 8
	l := binary.BigEndian.Uint32(data[segHeaderLen:])
	payload := data[segHeaderLen+recHeaderLen : segHeaderLen+recHeaderLen+int(l)]
	payload[len(payload)/2] ^= 0x01
	crc := crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli))
	binary.BigEndian.PutUint32(data[segHeaderLen+4:], crc)
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = NewCluster(cfg)
	if !errors.Is(err, durable.ErrTampered) {
		t.Fatalf("NewCluster on tampered WAL: err = %v, want durable.ErrTampered", err)
	}
}

// TestRecoveryRestoresOCCWatermark: a restarted cluster must keep
// rejecting commit timestamps at or below the recovered watermark — a
// replayed or stale-clock transaction cannot slip under the recovered log.
func TestRecoveryRestoresOCCWatermark(t *testing.T) {
	dataDir := t.TempDir()
	cfg := durableConfig(dataDir)

	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	commitSome(t, c, 4, 0)
	last := c.ServerAt(0).LastCommitted()
	c.Close()

	c2, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for i := 0; i < cfg.NumServers; i++ {
		if got := c2.ServerAt(i).LastCommitted(); got != last {
			t.Errorf("server %d recovered watermark %v, want %v", i, got, last)
		}
	}

	// A direct commit with a stale (pre-recovery) timestamp must abort.
	ident, err := c2.NewClientIdentity()
	if err != nil {
		t.Fatal(err)
	}
	stale := &txn.Transaction{
		ID: "stale-after-recovery",
		TS: txn.Timestamp{Time: 1, ClientID: 9999},
		Writes: []txn.WriteEntry{{
			ID:     ItemName(1, 0),
			NewVal: []byte("sneak"),
		}},
	}
	env, err := SignTxn(ident, stale)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, committed, err := c2.CommitBlockDirect(ctx, []*txn.Transaction{stale}, []identity.Envelope{env})
	if err == nil && committed {
		t.Fatal("stale-timestamp transaction committed after recovery")
	}
}
