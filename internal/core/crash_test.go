package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/transport"
)

// TestCommitBlocksOnCrashedCohort verifies the paper's blocking property
// (§4.3.1): "TFCommit, similar to 2PC, can be blocking if either the
// coordinator or any cohort fails". A crashed cohort makes the round fail
// rather than letting the survivors decide without it.
func TestCommitBlocksOnCrashedCohort(t *testing.T) {
	c := testCluster(t, Config{NumServers: 4})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}

	// A healthy commit first.
	s := cl.Begin()
	if err := s.Write(ctx, ItemName(1, 0), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	res, err := s.Commit(ctx)
	if err != nil || !res.Committed {
		t.Fatalf("healthy commit: %v %+v", err, res)
	}

	// Crash s03 (remove it from the network) and try again: every
	// termination requires all servers, so the commit must fail.
	c.net.Remove(ServerName(3))
	s2 := cl.Begin()
	if err := s2.Write(ctx, ItemName(1, 1), []byte("stuck")); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Commit(ctx); err == nil {
		t.Fatal("commit succeeded despite a crashed cohort")
	}

	// No server logged a second block: atomicity preserved under the
	// failure.
	for _, id := range c.Servers() {
		if id == ServerName(3) {
			continue
		}
		if got := c.Server(id).Log().Len(); got != 1 {
			t.Errorf("server %s log length = %d, want 1", id, got)
		}
	}
}

// TestHandleRejectsUnknownMessage exercises the server's dispatch guard.
func TestHandleRejectsUnknownMessage(t *testing.T) {
	c := testCluster(t, Config{})
	srv := c.ServerAt(1)
	msg := transport.Message{Type: "no-such-type", Body: []byte("{}")}
	if _, err := srv.Handle(context.Background(), "c0001", msg); err == nil {
		t.Fatal("unknown message type accepted")
	}
	bad := transport.Message{Type: "read", Body: []byte("{not-json")}
	if _, err := srv.Handle(context.Background(), "c0001", bad); err == nil {
		t.Fatal("garbage body accepted")
	}
}
