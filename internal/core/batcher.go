package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/crypto"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/txn"
	"repro/internal/wire"
)

// BlockCommitter terminates a batch of transactions in one protocol round;
// implemented by adapters over tfcommit.Coordinator and twopc.Coordinator.
// On an aborted block, failed itemizes the batch indices that cohorts
// vetoed (empty when unknown).
type BlockCommitter interface {
	CommitBlock(ctx context.Context, txns []*txn.Transaction, envs []identity.Envelope) (block *ledger.Block, committed bool, failed []int, err error)
}

// RetryCommitter is an optional BlockCommitter capability: the committer
// claims chain positions in EnqueueBlockRetry call order and runs the §4.6
// prune-and-retry policy itself, at the block's held position. The
// pipeline adapter implements it — re-enqueueing a pruned retry would land
// it behind later blocks whose timestamps have already advanced past its
// own, dooming the retry — so the batcher delegates pruning to the
// committer when it can.
//
// EnqueueBlockRetry must claim the chain position before returning: the
// batcher calls it from its dispatch loop so chain order equals dispatch
// order — and therefore timestamp-watermark order — even though the rounds
// themselves run concurrently. (Claiming inside a dispatched goroutine
// would let a later, higher-timestamped block race to an earlier height
// and spuriously abort the earlier block as wholly stale.) The returned
// wait blocks until the round completes. dropped is invoked for each
// pruned transaction index with the abort block that vetoed it, strictly
// before wait returns; the block wait returns applies to all remaining
// transactions.
type RetryCommitter interface {
	EnqueueBlockRetry(ctx context.Context, txns []*txn.Transaction, envs []identity.Envelope, maxPrunes int, dropped func(idx int, abortBlock *ledger.Block)) (wait func() (block *ledger.Block, committed bool, err error), err error)
}

// Batcher is the coordinator's termination service: it queues client
// end_transaction requests, packs them into blocks of non-conflicting
// transactions (paper §4.6: "the coordinator collects and inserts a set of
// non-conflicting client generated transactions and orders them within a
// single block"), runs the commit protocol block after block, and
// distributes the signed decisions back to the waiting clients.
//
// With depth 1 blocks are produced strictly sequentially. With depth K > 1
// the batcher feeds a commit pipeline (tfcommit.Pipeline): up to K blocks
// are dispatched concurrently, and block assembly for height h+1 overlaps
// the commit protocol of height h. Two admission rules keep the pipelined
// schedule equivalent to a serial one:
//
//   - No transaction conflicting with an in-flight block is admitted (its
//     OCC outcome would depend on whether the in-flight block has applied
//     yet); it is deferred until that block completes.
//   - The stale-timestamp watermark advances speculatively at dispatch
//     time, so a later block only carries timestamps above everything in
//     flight. If an in-flight block aborts the watermark stays advanced —
//     over-rejection is always legal (§4.3.1 lets servers reject any
//     stale-looking timestamp; the client simply retries with a fresh one).
type Batcher struct {
	committer BlockCommitter
	reg       *identity.Registry
	verifier  crypto.Verifier
	batchSize int
	maxWait   time.Duration
	depth     int
	o         *obs.Obs

	terminateHist *obs.Histogram
	batchTxns     *obs.Histogram

	queue chan *pendingTxn
	wake  chan struct{} // nudges gather when an in-flight block completes

	mu        sync.Mutex
	lastMax   txn.Timestamp
	inflight  []*blockFootprint // item sets of dispatched, unfinished blocks
	closed    bool
	closeOnce sync.Once
	stopped   chan struct{}
	wg        sync.WaitGroup
}

// blockFootprint is the item set of one dispatched block, held until its
// commit round completes so later admissions can avoid conflicting with it.
type blockFootprint struct {
	reads  map[txn.ItemID]struct{}
	writes map[txn.ItemID]struct{}
}

// conflictsWith reports whether t's OCC outcome could depend on the
// in-flight block: it reads an item the block writes, or writes an item the
// block reads or writes (mirrors txn.Transaction.Conflicts across blocks).
func (f *blockFootprint) conflictsWith(t *txn.Transaction) bool {
	for _, r := range t.Reads {
		if _, ok := f.writes[r.ID]; ok {
			return true
		}
	}
	for _, w := range t.Writes {
		if _, ok := f.writes[w.ID]; ok {
			return true
		}
		if _, ok := f.reads[w.ID]; ok {
			return true
		}
	}
	return false
}

func footprintOf(batch []*pendingTxn) *blockFootprint {
	f := &blockFootprint{
		reads:  make(map[txn.ItemID]struct{}),
		writes: make(map[txn.ItemID]struct{}),
	}
	for _, p := range batch {
		for _, r := range p.t.Reads {
			f.reads[r.ID] = struct{}{}
		}
		for _, w := range p.t.Writes {
			f.writes[w.ID] = struct{}{}
		}
	}
	return f
}

type pendingTxn struct {
	t    *txn.Transaction
	env  identity.Envelope
	resp chan termResult
	// sc is the client's commit-trace context (propagated in the
	// authenticated frame); the block's protocol round adopts the first
	// traced transaction's context so the round nests under its trace.
	sc obs.SpanContext
}

type termResult struct {
	resp *wire.EndTxnResp
	err  error
}

// ErrBatcherClosed is returned for requests submitted after Close.
var ErrBatcherClosed = errors.New("core: termination service closed")

// NewBatcher creates a sequential termination service producing blocks of
// up to batchSize transactions, waiting at most maxWait after the first
// queued transaction before sealing a partial block.
func NewBatcher(committer BlockCommitter, reg *identity.Registry, batchSize int, maxWait time.Duration) *Batcher {
	return NewPipelinedBatcher(committer, reg, batchSize, maxWait, 1)
}

// NewPipelinedBatcher creates a termination service that keeps up to depth
// blocks in flight through the committer at once (depth 1 is the strictly
// sequential service of NewBatcher). The committer must tolerate depth
// concurrent CommitBlock calls; tfcommit.Pipeline does.
func NewPipelinedBatcher(committer BlockCommitter, reg *identity.Registry, batchSize int, maxWait time.Duration, depth int) *Batcher {
	return NewPipelinedBatcherObs(committer, reg, batchSize, maxWait, depth, nil)
}

// NewPipelinedBatcherObs is NewPipelinedBatcher with an observability
// bundle: terminate latency and block-size instruments, plus trace
// propagation from client commit spans into the protocol rounds.
func NewPipelinedBatcherObs(committer BlockCommitter, reg *identity.Registry, batchSize int, maxWait time.Duration, depth int, o *obs.Obs) *Batcher {
	if batchSize < 1 {
		batchSize = 1
	}
	if maxWait <= 0 {
		maxWait = 2 * time.Millisecond
	}
	if depth < 1 {
		depth = 1
	}
	b := &Batcher{
		committer:     committer,
		reg:           reg,
		verifier:      crypto.NewSerial(reg),
		batchSize:     batchSize,
		maxWait:       maxWait,
		depth:         depth,
		o:             o,
		terminateHist: o.Histogram("fides_batcher_terminate_seconds", "Terminate latency at the coordinator's batching service: request admitted to decision distributed.", nil),
		batchTxns:     o.Histogram("fides_batcher_block_txns", "Transactions packed per dispatched block.", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}),
		queue:         make(chan *pendingTxn, 16*batchSize+64),
		wake:          make(chan struct{}, 1),
		stopped:       make(chan struct{}),
	}
	b.wg.Add(1)
	go b.run()
	return b
}

var _ server.Terminator = (*Batcher)(nil)

// SetVerifier replaces the batcher's verification plane (serial over the
// registry by default). Concurrent Terminate calls route their envelope
// checks through it — the batched backend coalesces them into worker-pool
// batches via Submit. Call before the batcher starts serving requests.
func (b *Batcher) SetVerifier(v crypto.Verifier) {
	if v != nil {
		b.verifier = v
	}
}

// Terminate implements server.Terminator: verify the client's signed
// request, enqueue it, and wait for its block's decision.
func (b *Batcher) Terminate(ctx context.Context, env identity.Envelope) (*wire.EndTxnResp, error) {
	start := time.Now()
	ctx, span := b.o.Start(ctx, "batcher.terminate")
	defer func() {
		span.End()
		b.terminateHist.ObserveSince(start)
	}()
	// Signature check through the verification plane: Submit lets the
	// batched backend coalesce the envelope with other in-flight Terminate
	// calls into one worker-pool batch; the payload then decodes against
	// the already-verified bytes.
	if _, err := b.verifier.Submit(env).Wait(ctx); err != nil {
		return nil, fmt.Errorf("core: client request: %w", err)
	}
	t, err := server.DecodeTxnEnvelopeTrusted(env)
	if err != nil {
		return nil, err
	}
	span.SetAttr("txn", t.ID)
	// "The servers ignore any end transaction request with a timestamp
	// lower than the latest committed timestamp" (§4.3.1). Rejecting here —
	// with a clock hint — spares the whole batch from a doomed block.
	b.mu.Lock()
	lastMax := b.lastMax
	closed := b.closed
	b.mu.Unlock()
	if closed {
		return nil, ErrBatcherClosed
	}
	if !lastMax.Less(t.TS) {
		return &wire.EndTxnResp{Rejected: true, LatestTS: lastMax}, nil
	}

	p := &pendingTxn{t: t, env: env, resp: make(chan termResult, 1)}
	if sc, ok := obs.SpanContextFrom(ctx); ok {
		p.sc = sc
	}
	select {
	case b.queue <- p:
	case <-b.stopped:
		return nil, ErrBatcherClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case r := <-p.resp:
		return r.resp, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Observe advances the service's last-committed watermark. Recovery seeds
// it so a restarted coordinator keeps enforcing §4.3.1's stale-timestamp
// rejection from where the recovered log left off.
func (b *Batcher) Observe(ts txn.Timestamp) {
	b.mu.Lock()
	b.lastMax = b.lastMax.Max(ts)
	b.mu.Unlock()
}

// Close stops the batching loop and fails queued requests.
func (b *Batcher) Close() {
	b.closeOnce.Do(func() {
		b.mu.Lock()
		b.closed = true
		b.mu.Unlock()
		close(b.stopped)
	})
	b.wg.Wait()
}

// run is the block-production loop: strictly sequential at depth 1, a
// bounded-concurrency dispatcher otherwise.
func (b *Batcher) run() {
	defer b.wg.Done()
	sem := make(chan struct{}, b.depth)
	var inflightWG sync.WaitGroup
	fail := func(ps []*pendingTxn) {
		for _, p := range ps {
			p.resp <- termResult{err: ErrBatcherClosed}
		}
	}
	var deferred []*pendingTxn
	for {
		// Reserve the dispatch slot BEFORE sealing a batch: while every
		// slot is busy, arrivals keep accumulating in the queue, so the
		// block sealed once a slot frees is as full as a serial round's
		// would have been (sealing first would chop the stream into
		// partial blocks and waste per-block protocol cost).
		if b.depth > 1 {
			select {
			case sem <- struct{}{}:
			case <-b.stopped:
				inflightWG.Wait()
				fail(deferred)
				return
			}
		}
		batch, rest, ok := b.gather(deferred)
		if !ok {
			// Let in-flight blocks finish normally (their clients get real
			// decisions), then fail everything still queued.
			inflightWG.Wait()
			fail(append(rest, batch...))
			return
		}
		deferred = rest
		if len(batch) == 0 {
			if b.depth > 1 {
				<-sem
			}
			continue
		}
		if b.depth == 1 {
			b.commitBatch(batch)
			continue
		}

		// Pipelined dispatch: publish the block's item footprint and
		// speculative watermark, claim the block's chain position — HERE,
		// in the dispatch loop, so commit order equals dispatch order and
		// therefore watermark order — then let the round run and its
		// results distribute in the background while this loop goes back
		// to assembling the next block.
		fp := footprintOf(batch)
		var maxTS txn.Timestamp
		for _, p := range batch {
			maxTS = maxTS.Max(p.t.TS)
		}
		b.mu.Lock()
		b.inflight = append(b.inflight, fp)
		b.lastMax = b.lastMax.Max(maxTS)
		b.mu.Unlock()
		finish := b.beginBatch(batch)
		inflightWG.Add(1)
		go func(batch []*pendingTxn, fp *blockFootprint, finish func()) {
			defer inflightWG.Done()
			defer func() { <-sem }()
			finish()
			b.mu.Lock()
			for i, g := range b.inflight {
				if g == fp {
					b.inflight = append(b.inflight[:i], b.inflight[i+1:]...)
					break
				}
			}
			b.mu.Unlock()
			// Nudge gather: transactions deferred for conflicting with
			// this block can be admitted now.
			select {
			case b.wake <- struct{}{}:
			default:
			}
		}(batch, fp, finish)
	}
}

// beginBatch starts one block's commit, claiming its chain position
// synchronously when the committer sequences positions (RetryCommitter),
// and returns the function that completes the round and answers the
// waiting clients.
func (b *Batcher) beginBatch(batch []*pendingTxn) func() {
	if rc, ok := b.committer.(RetryCommitter); ok {
		return b.enqueueBatchVia(rc, batch, maxPrunes)
	}
	return func() { b.commitBatch(batch) }
}

// gather assembles the next block's worth of mutually non-conflicting
// transactions: deferred transactions from earlier rounds first, then fresh
// arrivals until the block is full or maxWait has elapsed since the first
// arrival. Conflicting or stale-timestamp transactions are pushed to the
// next round / rejected respectively; in pipelined mode, transactions
// conflicting with an in-flight block are deferred the same way.
func (b *Batcher) gather(deferred []*pendingTxn) (batch, rest []*pendingTxn, ok bool) {
	b.mu.Lock()
	lastMax := b.lastMax
	inflight := append([]*blockFootprint(nil), b.inflight...)
	b.mu.Unlock()

	admit := func(p *pendingTxn, batch []*pendingTxn) ([]*pendingTxn, bool) {
		if !lastMax.Less(p.t.TS) {
			p.resp <- termResult{resp: &wire.EndTxnResp{Rejected: true, LatestTS: lastMax}}
			return batch, true
		}
		for _, f := range inflight {
			if f.conflictsWith(p.t) {
				return batch, false
			}
		}
		for _, q := range batch {
			if p.t.Conflicts(q.t) {
				return batch, false
			}
		}
		return append(batch, p), true
	}

	for i, p := range deferred {
		if len(batch) >= b.batchSize {
			// Re-queue what we cannot fit this round.
			return batch, append(rest, deferred[i:]...), true
		}
		var admitted bool
		if batch, admitted = admit(p, batch); !admitted {
			rest = append(rest, p)
		}
	}

	if len(batch) == 0 {
		// Block for the first transaction — or, with deferrals pending, for
		// an in-flight block to complete so the deferrals can be retried.
		select {
		case p := <-b.queue:
			var admitted bool
			if batch, admitted = admit(p, batch); !admitted {
				rest = append(rest, p)
			}
		case <-b.wakeC(len(rest) > 0):
			return batch, rest, true
		case <-b.stopped:
			return batch, rest, false
		}
	}

	timer := time.NewTimer(b.maxWait)
	defer timer.Stop()
	for len(batch) < b.batchSize {
		select {
		case p := <-b.queue:
			var admitted bool
			if batch, admitted = admit(p, batch); !admitted {
				rest = append(rest, p)
			}
		case <-timer.C:
			return batch, rest, true
		case <-b.stopped:
			return batch, rest, false
		}
	}
	return batch, rest, true
}

// wakeC returns the completion-nudge channel when deferred transactions are
// waiting on it, or a never-ready channel otherwise (so an empty queue
// still blocks instead of spinning on stale wakes).
func (b *Batcher) wakeC(wantWake bool) <-chan struct{} {
	if wantWake {
		return b.wake
	}
	return nil
}

// commitBatch runs the commit protocol for one block and distributes the
// outcome to every waiting client. When cohorts veto individual
// transactions (stale reads discovered at validation), the vetoed ones are
// answered with the signed abort block and the block is retried with them
// pruned, so one stale transaction does not doom its batchmates — this is
// what sustains the ~100-transaction blocks of the paper's evaluation
// (§4.6, §6.2).
func (b *Batcher) commitBatch(batch []*pendingTxn) {
	if rc, ok := b.committer.(RetryCommitter); ok {
		b.enqueueBatchVia(rc, batch, maxPrunes)()
		return
	}
	remaining := batch
	bctx := b.batchCtx(batch)
	for round := 0; ; round++ {
		txns := make([]*txn.Transaction, len(remaining))
		envs := make([]identity.Envelope, len(remaining))
		for i, p := range remaining {
			txns[i] = p.t
			envs[i] = p.env
		}
		block, committed, failed, err := b.committer.CommitBlock(bctx, txns, envs)
		if err != nil {
			for _, p := range remaining {
				p.resp <- termResult{err: fmt.Errorf("core: block commit failed: %w", err)}
			}
			return
		}
		if committed {
			b.mu.Lock()
			b.lastMax = b.lastMax.Max(block.MaxTS())
			b.mu.Unlock()
			for _, p := range remaining {
				p.resp <- termResult{resp: &wire.EndTxnResp{Committed: true, Block: block}}
			}
			return
		}
		if len(failed) == 0 || len(failed) >= len(remaining) || round >= maxPrunes {
			for _, p := range remaining {
				p.resp <- termResult{resp: &wire.EndTxnResp{Committed: false, Block: block}}
			}
			return
		}
		failedSet := make(map[int]struct{}, len(failed))
		for _, idx := range failed {
			failedSet[idx] = struct{}{}
		}
		next := remaining[:0]
		for i, p := range remaining {
			if _, bad := failedSet[i]; bad {
				p.resp <- termResult{resp: &wire.EndTxnResp{Committed: false, Block: block}}
				continue
			}
			next = append(next, p)
		}
		remaining = next
	}
}

// maxPrunes bounds the §4.6 prune-and-retry rounds per block.
const maxPrunes = 4

// batchCtx is the context a block's protocol round runs under: detached
// from any single request's cancellation (the round must finish for every
// batchmate), but carrying the first traced transaction's span context so
// the round nests under that client's commit trace.
func (b *Batcher) batchCtx(batch []*pendingTxn) context.Context {
	b.batchTxns.Observe(float64(len(batch)))
	for _, p := range batch {
		if p.sc.Valid() {
			return obs.ContextWithSpanContext(context.Background(), p.sc)
		}
	}
	return context.Background()
}

// enqueueBatchVia claims one block's chain position through a
// position-sequencing committer — synchronously, so the caller controls
// commit order — and returns the function that completes the round and
// distributes the per-transaction outcomes: vetoed transactions get the
// abort block that dropped them, the rest share the final decision.
func (b *Batcher) enqueueBatchVia(rc RetryCommitter, batch []*pendingTxn, maxPrunes int) func() {
	txns := make([]*txn.Transaction, len(batch))
	envs := make([]identity.Envelope, len(batch))
	for i, p := range batch {
		txns[i] = p.t
		envs[i] = p.env
	}
	dropped := make([]bool, len(batch))
	// The callback runs in the committer's round goroutine strictly before
	// wait returns, so the dropped slice needs no locking.
	wait, err := rc.EnqueueBlockRetry(b.batchCtx(batch), txns, envs, maxPrunes, func(i int, abortBlock *ledger.Block) {
		dropped[i] = true
		batch[i].resp <- termResult{resp: &wire.EndTxnResp{Committed: false, Block: abortBlock}}
	})
	fail := func(err error) {
		for i, p := range batch {
			if !dropped[i] {
				p.resp <- termResult{err: fmt.Errorf("core: block commit failed: %w", err)}
			}
		}
	}
	if err != nil {
		return func() { fail(err) }
	}
	return func() {
		block, committed, err := wait()
		if err != nil {
			fail(err)
			return
		}
		if committed {
			b.mu.Lock()
			b.lastMax = b.lastMax.Max(block.MaxTS())
			b.mu.Unlock()
		}
		for i, p := range batch {
			if !dropped[i] {
				p.resp <- termResult{resp: &wire.EndTxnResp{Committed: committed, Block: block}}
			}
		}
	}
}
