package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/server"
	"repro/internal/txn"
	"repro/internal/wire"
)

// BlockCommitter terminates a batch of transactions in one protocol round;
// implemented by adapters over tfcommit.Coordinator and twopc.Coordinator.
// On an aborted block, failed itemizes the batch indices that cohorts
// vetoed (empty when unknown).
type BlockCommitter interface {
	CommitBlock(ctx context.Context, txns []*txn.Transaction, envs []identity.Envelope) (block *ledger.Block, committed bool, failed []int, err error)
}

// Batcher is the coordinator's termination service: it queues client
// end_transaction requests, packs them into blocks of non-conflicting
// transactions (paper §4.6: "the coordinator collects and inserts a set of
// non-conflicting client generated transactions and orders them within a
// single block"), runs the commit protocol sequentially block after block,
// and distributes the signed decisions back to the waiting clients.
type Batcher struct {
	committer BlockCommitter
	reg       *identity.Registry
	batchSize int
	maxWait   time.Duration

	queue chan *pendingTxn

	mu        sync.Mutex
	lastMax   txn.Timestamp
	closed    bool
	closeOnce sync.Once
	stopped   chan struct{}
	wg        sync.WaitGroup
}

type pendingTxn struct {
	t    *txn.Transaction
	env  identity.Envelope
	resp chan termResult
}

type termResult struct {
	resp *wire.EndTxnResp
	err  error
}

// ErrBatcherClosed is returned for requests submitted after Close.
var ErrBatcherClosed = errors.New("core: termination service closed")

// NewBatcher creates a termination service producing blocks of up to
// batchSize transactions, waiting at most maxWait after the first queued
// transaction before sealing a partial block.
func NewBatcher(committer BlockCommitter, reg *identity.Registry, batchSize int, maxWait time.Duration) *Batcher {
	if batchSize < 1 {
		batchSize = 1
	}
	if maxWait <= 0 {
		maxWait = 2 * time.Millisecond
	}
	b := &Batcher{
		committer: committer,
		reg:       reg,
		batchSize: batchSize,
		maxWait:   maxWait,
		queue:     make(chan *pendingTxn, 16*batchSize+64),
		stopped:   make(chan struct{}),
	}
	b.wg.Add(1)
	go b.run()
	return b
}

var _ server.Terminator = (*Batcher)(nil)

// Terminate implements server.Terminator: verify the client's signed
// request, enqueue it, and wait for its block's decision.
func (b *Batcher) Terminate(ctx context.Context, env identity.Envelope) (*wire.EndTxnResp, error) {
	t, err := server.DecodeTxnEnvelope(b.reg, env)
	if err != nil {
		return nil, err
	}
	// "The servers ignore any end transaction request with a timestamp
	// lower than the latest committed timestamp" (§4.3.1). Rejecting here —
	// with a clock hint — spares the whole batch from a doomed block.
	b.mu.Lock()
	lastMax := b.lastMax
	closed := b.closed
	b.mu.Unlock()
	if closed {
		return nil, ErrBatcherClosed
	}
	if !lastMax.Less(t.TS) {
		return &wire.EndTxnResp{Rejected: true, LatestTS: lastMax}, nil
	}

	p := &pendingTxn{t: t, env: env, resp: make(chan termResult, 1)}
	select {
	case b.queue <- p:
	case <-b.stopped:
		return nil, ErrBatcherClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case r := <-p.resp:
		return r.resp, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Observe advances the service's last-committed watermark. Recovery seeds
// it so a restarted coordinator keeps enforcing §4.3.1's stale-timestamp
// rejection from where the recovered log left off.
func (b *Batcher) Observe(ts txn.Timestamp) {
	b.mu.Lock()
	b.lastMax = b.lastMax.Max(ts)
	b.mu.Unlock()
}

// Close stops the batching loop and fails queued requests.
func (b *Batcher) Close() {
	b.closeOnce.Do(func() {
		b.mu.Lock()
		b.closed = true
		b.mu.Unlock()
		close(b.stopped)
	})
	b.wg.Wait()
}

// run is the sequential block-production loop.
func (b *Batcher) run() {
	defer b.wg.Done()
	var deferred []*pendingTxn
	for {
		batch, rest, ok := b.gather(deferred)
		if !ok {
			for _, p := range append(rest, batch...) {
				p.resp <- termResult{err: ErrBatcherClosed}
			}
			return
		}
		deferred = rest
		if len(batch) == 0 {
			continue
		}
		b.commitBatch(batch)
	}
}

// gather assembles the next block's worth of mutually non-conflicting
// transactions: deferred transactions from earlier rounds first, then fresh
// arrivals until the block is full or maxWait has elapsed since the first
// arrival. Conflicting or stale-timestamp transactions are pushed to the
// next round / rejected respectively.
func (b *Batcher) gather(deferred []*pendingTxn) (batch, rest []*pendingTxn, ok bool) {
	b.mu.Lock()
	lastMax := b.lastMax
	b.mu.Unlock()

	admit := func(p *pendingTxn, batch []*pendingTxn) ([]*pendingTxn, bool) {
		if !lastMax.Less(p.t.TS) {
			p.resp <- termResult{resp: &wire.EndTxnResp{Rejected: true, LatestTS: lastMax}}
			return batch, true
		}
		for _, q := range batch {
			if p.t.Conflicts(q.t) {
				return batch, false
			}
		}
		return append(batch, p), true
	}

	for i, p := range deferred {
		if len(batch) >= b.batchSize {
			// Re-queue what we cannot fit this round.
			return batch, append(rest, deferred[i:]...), true
		}
		var admitted bool
		if batch, admitted = admit(p, batch); !admitted {
			rest = append(rest, p)
		}
	}

	if len(batch) == 0 {
		// Block for the first transaction.
		select {
		case p := <-b.queue:
			var admitted bool
			if batch, admitted = admit(p, batch); !admitted {
				rest = append(rest, p)
			}
		case <-b.stopped:
			return batch, rest, false
		}
	}

	timer := time.NewTimer(b.maxWait)
	defer timer.Stop()
	for len(batch) < b.batchSize {
		select {
		case p := <-b.queue:
			var admitted bool
			if batch, admitted = admit(p, batch); !admitted {
				rest = append(rest, p)
			}
		case <-timer.C:
			return batch, rest, true
		case <-b.stopped:
			return batch, rest, false
		}
	}
	return batch, rest, true
}

// commitBatch runs the commit protocol for one block and distributes the
// outcome to every waiting client. When cohorts veto individual
// transactions (stale reads discovered at validation), the vetoed ones are
// answered with the signed abort block and the block is retried with them
// pruned, so one stale transaction does not doom its batchmates — this is
// what sustains the ~100-transaction blocks of the paper's evaluation
// (§4.6, §6.2).
func (b *Batcher) commitBatch(batch []*pendingTxn) {
	remaining := batch
	const maxPrunes = 4
	for round := 0; ; round++ {
		txns := make([]*txn.Transaction, len(remaining))
		envs := make([]identity.Envelope, len(remaining))
		for i, p := range remaining {
			txns[i] = p.t
			envs[i] = p.env
		}
		block, committed, failed, err := b.committer.CommitBlock(context.Background(), txns, envs)
		if err != nil {
			for _, p := range remaining {
				p.resp <- termResult{err: fmt.Errorf("core: block commit failed: %w", err)}
			}
			return
		}
		if committed {
			b.mu.Lock()
			b.lastMax = b.lastMax.Max(block.MaxTS())
			b.mu.Unlock()
			for _, p := range remaining {
				p.resp <- termResult{resp: &wire.EndTxnResp{Committed: true, Block: block}}
			}
			return
		}
		if len(failed) == 0 || len(failed) >= len(remaining) || round >= maxPrunes {
			for _, p := range remaining {
				p.resp <- termResult{resp: &wire.EndTxnResp{Committed: false, Block: block}}
			}
			return
		}
		failedSet := make(map[int]struct{}, len(failed))
		for _, idx := range failed {
			failedSet[idx] = struct{}{}
		}
		next := remaining[:0]
		for i, p := range remaining {
			if _, bad := failedSet[i]; bad {
				p.resp <- termResult{resp: &wire.EndTxnResp{Committed: false, Block: block}}
				continue
			}
			next = append(next, p)
		}
		remaining = next
	}
}
