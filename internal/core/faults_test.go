package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/client"
	"repro/internal/identity"
	"repro/internal/server"
	"repro/internal/tfcommit"
	"repro/internal/txn"
)

// faultCluster builds a 4-server cluster for fault-injection tests.
func faultCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	cfg.NumServers = 4
	cfg.ItemsPerShard = 32
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 1
	}
	cfg.BatchWait = 500 * time.Microsecond
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

// commitRW commits a read-modify-write of item via a fresh session and
// requires the outcome.
func commitRW(t *testing.T, ctx context.Context, cl *client.Client, item txn.ItemID, val string, wantCommit bool) *client.CommitResult {
	t.Helper()
	for attempt := 0; attempt < 5; attempt++ {
		s := cl.Begin()
		if _, err := s.Read(ctx, item); err != nil {
			t.Fatalf("read %s: %v", item, err)
		}
		if err := s.Write(ctx, item, []byte(val)); err != nil {
			t.Fatalf("write %s: %v", item, err)
		}
		res, err := s.Commit(ctx)
		if err != nil {
			t.Fatalf("commit: %v", err)
		}
		if res.Rejected {
			continue
		}
		if res.Committed != wantCommit {
			t.Fatalf("commit of %s: committed=%v, want %v", item, res.Committed, wantCommit)
		}
		return res
	}
	t.Fatalf("commit of %s kept being rejected", item)
	return nil
}

// Scenario 1 (paper §5): a server returns stale values with up-to-date
// timestamps; the audit's Lemma 1 replay detects the incorrect read and
// names the server.
func TestAuditDetectsStaleReads(t *testing.T) {
	c := faultCluster(t, Config{})
	ctx := context.Background()
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	victim := ItemName(1, 3) // owned by s01

	// Establish a committed value so the faulty server has a "previous"
	// value to serve.
	commitRW(t, ctx, cl, victim, "honest-1", true)

	// s01 turns malicious: it serves stale reads from now on.
	c.ServerAt(1).SetFaults(server.Faults{StaleReads: true})

	// The next reader observes the stale value; its commit succeeds because
	// the timestamps are up to date, poisoning the log.
	commitRW(t, ctx, cl, victim, "poisoned-2", true)

	report, err := c.Audit(ctx, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad := report.ByType(audit.FindingIncorrectRead)
	if len(bad) == 0 {
		t.Fatalf("no incorrect-read finding; findings: %v", report.Findings)
	}
	if !report.Implicates(ServerName(1)) {
		t.Errorf("report does not implicate s01: %v", report.Findings)
	}
	if bad[0].Item != victim {
		t.Errorf("finding names item %s, want %s", bad[0].Item, victim)
	}
	if fv := report.FirstViolation(); fv == nil || fv.Height != 1 {
		t.Errorf("first violation should be at height 1, got %+v", fv)
	}
}

// Scenario 3 (paper §5): a server corrupts its datastore (or silently drops
// updates); the VO/MHT audit (Lemma 2) detects the precise version.
func TestAuditDetectsSkippedApply(t *testing.T) {
	c := faultCluster(t, Config{MultiVersion: true})
	ctx := context.Background()
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	victim := ItemName(2, 5) // owned by s02

	c.ServerAt(2).SetFaults(server.Faults{SkipApply: true})
	commitRW(t, ctx, cl, victim, "never-applied", true)

	report, err := c.Audit(ctx, audit.Options{CheckDatastore: true, Exhaustive: true, MultiVersion: true})
	if err != nil {
		t.Fatal(err)
	}
	bad := report.ByType(audit.FindingDatastoreCorruption)
	if len(bad) == 0 {
		t.Fatalf("no datastore-corruption finding; findings: %v", report.Findings)
	}
	if got := bad[0].Servers; len(got) != 1 || got[0] != ServerName(2) {
		t.Errorf("finding implicates %v, want [s02]", got)
	}
}

func TestAuditDetectsCorruptedApply(t *testing.T) {
	c := faultCluster(t, Config{})
	ctx := context.Background()
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	victim := ItemName(3, 7) // owned by s03

	c.ServerAt(3).SetFaults(server.Faults{CorruptApplyValue: []byte("garbage")})
	commitRW(t, ctx, cl, victim, "intended", true)

	report, err := c.Audit(ctx, audit.Options{CheckDatastore: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.ByType(audit.FindingDatastoreCorruption)) == 0 {
		t.Fatalf("no datastore-corruption finding; findings: %v", report.Findings)
	}
	if !report.Implicates(ServerName(3)) {
		t.Errorf("report does not implicate s03")
	}
}

// Lemma 4: a server sending wrong CoSi values is identified precisely by
// partial-signature exclusion; the coordinator reports it and the round
// fails rather than producing an invalid signature.
func TestCoordinatorIdentifiesBadCommitment(t *testing.T) {
	for _, fault := range []server.Faults{{BadCommitment: true}, {BadResponse: true}} {
		c := faultCluster(t, Config{})
		ctx := context.Background()
		cl, err := c.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		c.ServerAt(2).SetFaults(fault)

		s := cl.Begin()
		if err := s.Write(ctx, ItemName(0, 1), []byte("v")); err != nil {
			t.Fatal(err)
		}
		_, err = s.Commit(ctx)
		if err == nil {
			t.Fatalf("commit should fail with faults %+v", fault)
		}
		if !strings.Contains(err.Error(), "faulty signers: s02") {
			t.Errorf("error should identify s02, got: %v", err)
		}
		c.Close()
	}
}

// Scenario 2 (paper §5): a malicious coordinator inserts a fake Merkle root
// for a benign cohort; the cohort detects it in the SchResponse phase and
// refuses to co-sign.
func TestCohortRejectsFakeRoot(t *testing.T) {
	c := faultCluster(t, Config{CoordinatorFaults: tfcommit.Faults{FakeRootFor: ServerName(1)}})
	ctx := context.Background()
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}

	s := cl.Begin()
	if err := s.Write(ctx, ItemName(1, 1), []byte("v")); err != nil {
		t.Fatal(err)
	}
	_, err = s.Commit(ctx)
	if err == nil {
		t.Fatal("commit should fail: benign cohort must refuse the fake root")
	}
	if !strings.Contains(err.Error(), "s01") || !strings.Contains(err.Error(), "different root") {
		t.Errorf("error should show s01 refusing over its root, got: %v", err)
	}
}

// Colluding variant of Scenario 2: the cohort itself votes with a fake
// root. The commit succeeds, but the datastore audit then fails for that
// server — "in case server Sb colludes with the coordinator ... the
// datastore verification will fail for server Sb".
func TestAuditDetectsFakeRootCollusion(t *testing.T) {
	c := faultCluster(t, Config{})
	ctx := context.Background()
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	c.ServerAt(1).SetFaults(server.Faults{FakeRootInVote: true})
	commitRW(t, ctx, cl, ItemName(1, 2), "v", true)

	report, err := c.Audit(ctx, audit.Options{CheckDatastore: true})
	if err != nil {
		t.Fatal(err)
	}
	bad := report.ByType(audit.FindingDatastoreCorruption)
	if len(bad) == 0 {
		t.Fatalf("no datastore-corruption finding; findings: %v", report.Findings)
	}
	if got := bad[0].Servers; len(got) != 1 || got[0] != ServerName(1) {
		t.Errorf("finding implicates %v, want [s01]", got)
	}
}

// Lemma 5 case 1: the coordinator equivocates at the Challenge phase. A
// correct cohort recomputes ch = h(X_sch ‖ b) over the block it received
// and exposes the mismatch immediately.
func TestCohortsExposeChallengeEquivocation(t *testing.T) {
	c := faultCluster(t, Config{CoordinatorFaults: tfcommit.Faults{EquivocateChallenge: true}})
	ctx := context.Background()
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	s := cl.Begin()
	if err := s.Write(ctx, ItemName(0, 2), []byte("v")); err != nil {
		t.Fatal(err)
	}
	_, err = s.Commit(ctx)
	if err == nil {
		t.Fatal("commit should fail: correct cohorts must expose the equivocation")
	}
	if !strings.Contains(err.Error(), "challenge") {
		t.Errorf("error should reference the challenge check, got: %v", err)
	}
}

// Lemma 5 at Decision time with collusion: half the cohorts skip co-sign
// verification and append the coordinator's mutated block. The audit finds
// the invalid signature in their logs and the fork against the
// authoritative log.
func TestAuditDetectsDecisionEquivocation(t *testing.T) {
	c := faultCluster(t, Config{})
	ctx := context.Background()
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}

	// A clean block first so every log has an intact prefix.
	commitRW(t, ctx, cl, ItemName(0, 1), "clean", true)

	// The mutated branch goes to the second half of the remote cohorts
	// (s02, s03 for remotes [s01 s02 s03]); they collude by skipping
	// verification.
	c.ServerAt(2).SetFaults(server.Faults{SkipCoSigCheck: true})
	c.ServerAt(3).SetFaults(server.Faults{SkipCoSigCheck: true})
	if err := c.SetCoordinatorFaults(tfcommit.Faults{EquivocateDecision: true}); err != nil {
		t.Fatal(err)
	}

	res := commitRW(t, ctx, cl, ItemName(0, 2), "forked", true)
	if res.Block.Height != 1 {
		t.Fatalf("expected fork at height 1, got %d", res.Block.Height)
	}

	report, err := c.Audit(ctx, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tampered := report.ByType(audit.FindingTamperedLog)
	if len(tampered) == 0 {
		t.Fatalf("no tampered-log finding for the equivocation branch; findings: %v", report.Findings)
	}
	if !report.Implicates(ServerName(2)) || !report.Implicates(ServerName(3)) {
		t.Errorf("colluders s02/s03 not implicated: %v", report.Findings)
	}
	// The coordinator produced the incorrect block; it must be implicated
	// too.
	if !report.Implicates(c.Coordinator()) {
		t.Errorf("coordinator not implicated: %v", report.Findings)
	}
	if fv := report.FirstViolation(); fv == nil || fv.Height != 1 {
		t.Errorf("first violation should be at height 1, got %+v", fv)
	}
}

// Lemma 6: post-hoc tampering with a stored block breaks the collective
// signature.
func TestAuditDetectsTamperedBlock(t *testing.T) {
	c := faultCluster(t, Config{})
	ctx := context.Background()
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	victim := ItemName(1, 4)
	commitRW(t, ctx, cl, victim, "true-value", true)
	commitRW(t, ctx, cl, ItemName(0, 4), "other", true)

	// s01 rewrites history when serving its log.
	c.ServerAt(1).SetFaults(server.Faults{
		TamperBlock: &server.TamperSpec{Height: 0, Item: victim, NewVal: []byte("forged")},
	})

	report, err := c.Audit(ctx, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tampered := report.ByType(audit.FindingTamperedLog)
	if len(tampered) == 0 {
		t.Fatalf("no tampered-log finding; findings: %v", report.Findings)
	}
	if tampered[0].Height != 0 {
		t.Errorf("tamper detected at height %d, want 0", tampered[0].Height)
	}
	if !report.Implicates(ServerName(1)) {
		t.Errorf("s01 not implicated")
	}
	// The authoritative log must come from an honest server and carry the
	// true value.
	if report.AuthoritativeFrom == ServerName(1) {
		t.Errorf("authoritative log taken from the tamperer")
	}
}

// Lemma 6: reordering blocks breaks the hash chain.
func TestAuditDetectsReorderedLog(t *testing.T) {
	c := faultCluster(t, Config{})
	ctx := context.Background()
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	commitRW(t, ctx, cl, ItemName(0, 1), "a", true)
	commitRW(t, ctx, cl, ItemName(1, 1), "b", true)
	commitRW(t, ctx, cl, ItemName(2, 1), "c", true)

	c.ServerAt(2).SetFaults(server.Faults{ReorderLog: true})

	report, err := c.Audit(ctx, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reordered := report.ByType(audit.FindingReorderedLog)
	if len(reordered) == 0 {
		t.Fatalf("no reordered-log finding; findings: %v", report.Findings)
	}
	if got := reordered[0].Servers; len(got) != 1 || got[0] != ServerName(2) {
		t.Errorf("finding implicates %v, want [s02]", got)
	}
}

// Lemma 7: omitting the tail of the log is detected by comparison with the
// longest valid log.
func TestAuditDetectsDroppedTail(t *testing.T) {
	c := faultCluster(t, Config{})
	ctx := context.Background()
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		commitRW(t, ctx, cl, ItemName(i%4, 1), "v", true)
	}

	c.ServerAt(3).SetFaults(server.Faults{DropTailBlocks: 2})

	report, err := c.Audit(ctx, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	incomplete := report.ByType(audit.FindingIncompleteLog)
	if len(incomplete) == 0 {
		t.Fatalf("no incomplete-log finding; findings: %v", report.Findings)
	}
	f := incomplete[0]
	if len(f.Servers) != 1 || f.Servers[0] != ServerName(3) {
		t.Errorf("finding implicates %v, want [s03]", f.Servers)
	}
	if f.Height != 2 {
		t.Errorf("missing tail starts at height %d, want 2", f.Height)
	}
	if len(report.Authoritative) != 4 {
		t.Errorf("authoritative log has %d blocks, want 4", len(report.Authoritative))
	}
}

// Lemma 3: a history committed out of timestamp order (made possible by
// servers that skip the stale-timestamp rule and OCC validation) is flagged
// by the serializability checks.
func TestAuditDetectsSerializabilityViolation(t *testing.T) {
	c := faultCluster(t, Config{})
	ctx := context.Background()

	// All servers misbehave: they accept stale timestamps and vote commit
	// unconditionally.
	for i := 0; i < 4; i++ {
		c.ServerAt(i).SetFaults(server.Faults{AcceptStaleTS: true, VoteCommitAlways: true})
	}

	ident, err := c.NewClientIdentity()
	if err != nil {
		t.Fatal(err)
	}
	item := ItemName(0, 9)

	// T1 commits at ts 100 writing the item.
	t1 := &txn.Transaction{
		ID: "t-high", TS: txn.Timestamp{Time: 100, ClientID: 1},
		Writes: []txn.WriteEntry{{ID: item, NewVal: []byte("high"), Blind: true}},
	}
	env1, err := SignTxn(ident, t1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.CommitBlockDirect(ctx, []*txn.Transaction{t1}, []identity.Envelope{env1}); err != nil || !ok {
		t.Fatalf("t1: %v ok=%v", err, ok)
	}

	// T2 then commits at ts 50 — behind T1 — re-writing the same item: a
	// WW conflict against the timestamp order.
	t2 := &txn.Transaction{
		ID: "t-low", TS: txn.Timestamp{Time: 50, ClientID: 2},
		Writes: []txn.WriteEntry{{ID: item, NewVal: []byte("low"), Blind: true,
			WTS: txn.Timestamp{Time: 100, ClientID: 1}}},
	}
	env2, err := SignTxn(ident, t2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.CommitBlockDirect(ctx, []*txn.Transaction{t2}, []identity.Envelope{env2}); err != nil || !ok {
		t.Fatalf("t2: %v ok=%v", err, ok)
	}

	report, err := c.Audit(ctx, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	viol := report.ByType(audit.FindingSerializability)
	if len(viol) == 0 {
		t.Fatalf("no serializability finding; findings: %v", report.Findings)
	}
	if !report.Implicates(ServerName(0)) {
		t.Errorf("owner s00 not implicated: %v", report.Findings)
	}
}

// A correct cluster under both fault-free audit options yields no findings
// even after block batches, multi-shard traffic, and aborts.
func TestAuditCleanAfterMixedTraffic(t *testing.T) {
	c := faultCluster(t, Config{BatchSize: 4, MultiVersion: true})
	ctx := context.Background()
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		commitRW(t, ctx, cl, ItemName(i%4, i%13), "v", true)
	}
	report, err := c.Audit(ctx, audit.Options{CheckDatastore: true, Exhaustive: true, MultiVersion: true})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		for _, f := range report.Findings {
			t.Errorf("finding: %s", f)
		}
	}
}
