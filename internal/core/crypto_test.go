package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/crypto"
	"repro/internal/identity"
	"repro/internal/txn"
)

// TestBatchedCryptoConcurrentPipelinedCommits drives many clients through
// a pipelined batched-backend cluster at once (run under -race in CI): the
// shared worker pool, verdict caches and per-server verifier instances all
// see concurrent traffic, and every commit must still land.
func TestBatchedCryptoConcurrentPipelinedCommits(t *testing.T) {
	c := testCluster(t, Config{
		NumServers:    3,
		ItemsPerShard: 64,
		BatchSize:     4,
		Pipeline:      4,
		Crypto:        CryptoBatched,
		CryptoWorkers: 4,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const workers, perWorker = 4, 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		cl, err := c.NewClient()
		if err != nil {
			t.Fatalf("NewClient: %v", err)
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s := cl.Begin()
				if err := s.Write(ctx, ItemName(w%3, (w*perWorker+i)%8), []byte(fmt.Sprintf("v-%d-%d", w, i))); err != nil {
					errs <- fmt.Errorf("worker %d write: %w", w, err)
					return
				}
				res, err := s.Commit(ctx)
				if err != nil {
					errs <- fmt.Errorf("worker %d commit: %w", w, err)
					return
				}
				// Write-write conflicts between workers legitimately abort;
				// only transport/verification failures are test failures.
				_ = res
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The committed chain must verify under a fresh serial plane: whatever
	// the batched plane accepted, the reference implementation accepts too.
	log := c.ServerAt(0).Log()
	if log.Len() == 0 {
		t.Fatal("no blocks committed")
	}
	serial := crypto.NewSerial(c.Registry())
	for h := uint64(0); h < uint64(log.Len()); h++ {
		b, err := log.Get(h)
		if err != nil {
			t.Fatalf("block %d: %v", h, err)
		}
		if err := serial.VerifyCoSig(b.Signers, b.SigningBytes(), b.CoSig()); err != nil {
			t.Fatalf("block %d fails serial re-verification: %v", h, err)
		}
	}
}

// TestBatchedCryptoCloseWithCommitsInFlight closes the cluster while
// commits are still being issued: Close must tear down the batched
// verifiers' worker pools cleanly (no panic, no goroutine deadlock), and
// the in-flight commits must resolve — either committed before the
// teardown or failed with an error, never hung.
func TestBatchedCryptoCloseWithCommitsInFlight(t *testing.T) {
	cfg := Config{
		NumServers:    3,
		ItemsPerShard: 64,
		BatchSize:     2,
		Pipeline:      2,
		Crypto:        CryptoBatched,
		BatchWait:     500 * time.Microsecond,
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const workers = 4
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		cl, err := c.NewClient()
		if err != nil {
			t.Fatalf("NewClient: %v", err)
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; ; i++ {
				s := cl.Begin()
				if err := s.Write(ctx, ItemName(w%3, i%8), []byte("x")); err != nil {
					return // cluster shut down under us: expected
				}
				if _, err := s.Commit(ctx); err != nil {
					return // ditto
				}
				if ctx.Err() != nil {
					return
				}
			}
		}(w)
	}
	close(start)
	time.Sleep(5 * time.Millisecond) // let commits get in flight
	c.Close()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		t.Fatal("commit goroutines hung after Cluster.Close")
	}
}

// TestBatchedVerifierDispatchOrderIndependence submits envelopes through
// the cluster coordinator's batched verifier in one order and waits on the
// tickets in reverse: every verdict must be independent of wait order, and
// a bad envelope's error must surface on exactly its own ticket.
func TestBatchedVerifierDispatchOrderIndependence(t *testing.T) {
	c := testCluster(t, Config{NumServers: 3, Crypto: CryptoBatched})
	ident, err := c.NewClientIdentity()
	if err != nil {
		t.Fatal(err)
	}
	v := c.verifiers[c.coordID]

	const n = 16
	const badAt = 5
	tickets := make([]*crypto.Ticket, n)
	for i := 0; i < n; i++ {
		tx := &txn.Transaction{
			ID: fmt.Sprintf("order-%02d", i),
			TS: txn.Timestamp{Time: uint64(i + 1), ClientID: 9},
			Writes: []txn.WriteEntry{{
				ID: ItemName(0, i%8), NewVal: []byte("w"), Blind: true,
			}},
		}
		env, err := SignTxn(ident, tx)
		if err != nil {
			t.Fatal(err)
		}
		if i == badAt {
			env.Payload = append(append([]byte(nil), env.Payload...), 0xFF)
		}
		tickets[i] = v.Submit(env)
	}
	ctx := context.Background()
	for i := n - 1; i >= 0; i-- {
		_, err := tickets[i].Wait(ctx)
		if i == badAt {
			if !errors.Is(err, identity.ErrBadSignature) {
				t.Fatalf("ticket %d: want ErrBadSignature, got %v", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("ticket %d: unexpected error %v", i, err)
		}
	}
}
