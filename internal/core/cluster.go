// Package core assembles the Fides system of paper §4: a set of untrusted
// database servers (one shard each), a designated coordinator server
// running TFCommit (or the 2PC baseline), the shared public-key registry,
// the item directory, client factories, and the external auditor — wired
// over an in-process network with simulated latency (the reproduction's
// stand-in for the paper's single-datacenter EC2 testbed) or over TCP.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/client"
	"repro/internal/crypto"
	"repro/internal/durable"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/lightclient"
	"repro/internal/obs"
	"repro/internal/peer"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/tfcommit"
	"repro/internal/transport"
	"repro/internal/twopc"
	"repro/internal/txn"
	"repro/internal/watch"
)

// Protocol selects the atomic commitment protocol a cluster runs.
type Protocol int

// Supported commit protocols.
const (
	// ProtocolTFCommit is the paper's trust-free commitment protocol.
	ProtocolTFCommit Protocol = iota + 1
	// ProtocolTwoPC is the trusted Two-Phase Commit baseline of §6.1.
	ProtocolTwoPC
)

func (p Protocol) String() string {
	switch p {
	case ProtocolTFCommit:
		return "tfcommit"
	case ProtocolTwoPC:
		return "2pc"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// Config describes a cluster. Zero fields take the defaults documented on
// each field.
type Config struct {
	// NumServers is the number of database servers / shards (default 5,
	// matching most of §6).
	NumServers int
	// ItemsPerShard is the number of data items per server (default 10000,
	// §6: "each database server stores a single shard consisting of 10000
	// data items").
	ItemsPerShard int
	// MultiVersion enables multi-versioned shards (paper §4.2.1).
	MultiVersion bool
	// NetworkLatency is the simulated one-way message latency (default
	// 250µs ≈ intra-datacenter; 0 disables the simulation).
	NetworkLatency time.Duration
	// BatchSize is the number of transactions per block (default 100, §6).
	BatchSize int
	// BatchWait bounds how long the coordinator waits to fill a block.
	BatchWait time.Duration
	// Protocol selects TFCommit (default) or the 2PC baseline.
	Protocol Protocol
	// Pipeline is the maximum number of TFCommit blocks in flight at once
	// (default/1 = strictly serial rounds). With K > 1 the prepare, vote
	// and co-sign phases of block h+1 overlap the decision broadcast,
	// datastore apply and WAL fsync of block h; cohorts still validate,
	// apply and chain blocks in strict height order. TFCommit only.
	Pipeline int
	// Coordinators is the number of servers that take turns driving
	// TFCommit rounds, round-robin by block (default/1 = only server 0, the
	// paper's designated coordinator; §3 observes any server can
	// coordinate). Clients still send end_transaction to server 0, which
	// runs the termination service and dispatches each block to its
	// rotating coordinator. TFCommit only.
	Coordinators int
	// InitialValue supplies each item's starting value (default "0").
	InitialValue func(txn.ItemID) []byte
	// TCP runs the cluster over real loopback TCP sockets instead of the
	// in-process network. NetworkLatency is ignored in TCP mode (the real
	// stack supplies the latency).
	TCP bool
	// DataDir enables durability: every server keeps a write-ahead log of
	// its tamper-proof log (and periodic shard snapshots) under
	// DataDir/<server-id>/, and a cluster built on a non-empty DataDir
	// starts by verified crash recovery. Server identities are persisted in
	// the directory so recovered co-signs stay verifiable. Empty (default)
	// keeps everything in memory.
	DataDir string
	// Fsync selects the WAL flush discipline (default group commit).
	Fsync durable.FsyncMode
	// SnapshotEvery writes a shard snapshot every N committed blocks
	// (0 disables snapshots; ignored without DataDir).
	SnapshotEvery int
	// ServerFaults configures per-server misbehavior, keyed by server index
	// (0-based, in server-id order).
	ServerFaults map[int]server.Faults
	// CoordinatorFaults configures coordinator misbehavior (TFCommit only).
	CoordinatorFaults tfcommit.Faults
	// NetScheduler replaces the in-process network's delivery scheduler
	// (internal/sim installs its seeded virtual-time scheduler here).
	// Ignored in TCP mode and when nil (the default real-time sleeper).
	NetScheduler transport.Scheduler
	// PreciseNetDelay opts the default real-time scheduler into
	// microsecond-accurate delivery delays (yield-spin on the final
	// stretch). The benchmark harness sets it; tests keep the cheap plain
	// sleeps. No effect with a custom NetScheduler or in TCP mode.
	PreciseNetDelay bool
	// CrashHook, when non-nil, receives every named crash point a server
	// passes — "pre-fsync" (WAL, from internal/durable), "post-cosign" and
	// "mid-apply" (commit path, from internal/server), and "mid-broadcast"
	// (coordinator decision dissemination, from internal/tfcommit) — with
	// the server id and block height. Returning a non-nil error makes that
	// server fail at exactly that point; the simulation harness uses this
	// to crash servers between the effects a real crash can separate.
	CrashHook func(id identity.NodeID, point string, height uint64) error
	// Obs supplies the cluster-wide observability bundle: a metrics
	// registry (served by cmd/fides-server's -metrics-addr), an optional
	// tracer (the simulation harness injects a virtual-clock one), and a
	// structured logger. Nil defaults to a bundle with a fresh registry, no
	// tracer and a discard logger, so Metrics() always works. Each server
	// observes through a derived bundle labeled {server="sNN"}.
	Obs *obs.Obs
	// Crypto selects the verification-plane backend ("serial" or
	// "batched", see internal/crypto) that every server, coordinator and
	// the termination service route their signature checks through.
	// "serial" (the default) verifies inline on the calling goroutine —
	// the pre-verification-plane behavior byte-for-byte. "batched" fans
	// envelope batches and Merkle recomputation across a per-server worker
	// pool, batch-verifies co-sign shares, and caches co-sign verdicts, to
	// scale the CPU-bound commit path with cores.
	Crypto string
	// CryptoWorkers sizes each batched verifier's worker pool
	// (0 = GOMAXPROCS). Ignored with the serial backend.
	CryptoWorkers int
	// ResolveInterval, when positive, starts a background decision resolver
	// on every server of a TFCommit cluster: each server periodically asks
	// its peers for decisions it is missing and pulls any verified log
	// suffix it is behind on (server.StartResolver). Zero (the default)
	// leaves resolution to the vote path's on-demand catch-up — the
	// deterministic simulator needs it off and drives
	// server.ResolvePending explicitly so traces stay reproducible.
	ResolveInterval time.Duration
}

func (c *Config) applyDefaults() {
	if c.NumServers <= 0 {
		c.NumServers = 5
	}
	if c.ItemsPerShard <= 0 {
		c.ItemsPerShard = 10000
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 100
	}
	if c.BatchWait <= 0 {
		c.BatchWait = 2 * time.Millisecond
	}
	if c.Protocol == 0 {
		c.Protocol = ProtocolTFCommit
	}
	if c.Pipeline < 1 {
		c.Pipeline = 1
	}
	if c.Coordinators < 1 {
		c.Coordinators = 1
	}
	if c.Coordinators > c.NumServers {
		c.Coordinators = c.NumServers
	}
	if c.InitialValue == nil {
		c.InitialValue = func(txn.ItemID) []byte { return []byte("0") }
	}
	if c.Crypto == "" {
		c.Crypto = CryptoSerial
	}
}

// Verification-plane backends for Config.Crypto.
const (
	CryptoSerial  = "serial"
	CryptoBatched = "batched"
)

// pipelined reports whether the configuration uses the pipelined commit
// path (either lookahead depth or coordinator rotation engages it).
func (c *Config) pipelined() bool {
	return c.Protocol == ProtocolTFCommit && (c.Pipeline > 1 || c.Coordinators > 1)
}

// ServerName returns the canonical id of the i-th server.
func ServerName(i int) identity.NodeID {
	return identity.NodeID(fmt.Sprintf("s%02d", i))
}

// Cluster is a running Fides deployment.
type Cluster struct {
	cfg       Config
	o         *obs.Obs
	net       *transport.LocalNetwork
	reg       *identity.Registry
	dir       *Directory
	serverIDs []identity.NodeID
	servers   map[identity.NodeID]*server.Server
	verifiers map[identity.NodeID]crypto.Verifier
	cliVer    crypto.Verifier
	coordID   identity.NodeID
	batcher   *Batcher
	tfc       *tfcommit.Coordinator
	coords    []*tfcommit.Coordinator
	pipe      *tfcommit.Pipeline
	recovered map[identity.NodeID]*durable.Recovered
	stores    map[identity.NodeID]*durable.Store

	// TCP mode state.
	tcpAddrs map[identity.NodeID]string
	tcpNodes map[identity.NodeID]*transport.TCPNode

	mu        sync.Mutex
	closers   []io.Closer
	clientSeq atomic.Uint32
	closed    atomic.Bool
}

// newEndpoint attaches a node to the cluster's network (local or TCP).
func (c *Cluster) newEndpoint(ident *identity.Identity, handler transport.Handler) (transport.Transport, error) {
	if !c.cfg.TCP {
		return c.net.Endpoint(ident, c.reg, handler), nil
	}
	node, err := transport.NewTCPNode(ident, c.reg, "127.0.0.1:0", handler)
	if err != nil {
		return nil, fmt.Errorf("core: tcp endpoint %s: %w", ident.ID, err)
	}
	c.mu.Lock()
	for id, addr := range c.tcpAddrs {
		node.SetAddress(id, addr)
	}
	if handler != nil { // servers are dialable; clients are not
		c.tcpAddrs[ident.ID] = node.Addr()
		c.tcpNodes[ident.ID] = node
	}
	c.closers = append(c.closers, node)
	c.mu.Unlock()
	return node, nil
}

// wireTCP teaches every server node the addresses of all its peers; called
// once all server endpoints exist.
func (c *Cluster) wireTCP() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, node := range c.tcpNodes {
		for id, addr := range c.tcpAddrs {
			node.SetAddress(id, addr)
		}
	}
}

// NewCluster builds and starts a cluster per cfg.
func NewCluster(cfg Config) (*Cluster, error) {
	cfg.applyDefaults()
	if cfg.Protocol != ProtocolTFCommit && (cfg.Pipeline > 1 || cfg.Coordinators > 1) {
		return nil, errors.New("core: Pipeline and Coordinators require TFCommit")
	}
	if cfg.Crypto != CryptoSerial && cfg.Crypto != CryptoBatched {
		return nil, fmt.Errorf("core: unknown crypto backend %q", cfg.Crypto)
	}

	o := cfg.Obs
	if o == nil {
		o = &obs.Obs{Metrics: obs.NewRegistry()}
	}
	c := &Cluster{
		cfg:       cfg,
		o:         o,
		net:       transport.NewLocalNetwork(cfg.NetworkLatency),
		reg:       identity.NewRegistry(),
		servers:   make(map[identity.NodeID]*server.Server, cfg.NumServers),
		verifiers: make(map[identity.NodeID]crypto.Verifier, cfg.NumServers),
		recovered: make(map[identity.NodeID]*durable.Recovered),
		stores:    make(map[identity.NodeID]*durable.Store),
		tcpAddrs:  make(map[identity.NodeID]string),
		tcpNodes:  make(map[identity.NodeID]*transport.TCPNode),
	}
	if cfg.NetScheduler != nil {
		c.net.SetScheduler(cfg.NetScheduler)
	} else if cfg.PreciseNetDelay {
		c.net.SetPreciseDelay(true)
	}
	// On any construction failure, release whatever was already opened
	// (durable stores, TCP sockets).
	built := false
	defer func() {
		if !built {
			c.mu.Lock()
			closers := c.closers
			c.closers = nil
			c.mu.Unlock()
			for _, cl := range closers {
				_ = cl.Close()
			}
		}
	}()

	// Identities and shard layout. With a data directory the server keys
	// are persistent — a restarted cluster must be the same signer set or
	// none of the recovered collective signatures would verify.
	var idents []*identity.Identity
	if cfg.DataDir != "" {
		var err error
		idents, err = loadOrCreateServerIdents(cfg.DataDir, cfg.NumServers)
		if err != nil {
			return nil, err
		}
	} else {
		idents = make([]*identity.Identity, cfg.NumServers)
		for i := 0; i < cfg.NumServers; i++ {
			ident, err := identity.New(ServerName(i), identity.RoleServer, nil)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			idents[i] = ident
		}
	}
	shards := make(map[identity.NodeID][]txn.ItemID, cfg.NumServers)
	for i := 0; i < cfg.NumServers; i++ {
		id := ServerName(i)
		c.reg.Register(idents[i].Public())
		c.serverIDs = append(c.serverIDs, id)

		items := make([]txn.ItemID, cfg.ItemsPerShard)
		for j := 0; j < cfg.ItemsPerShard; j++ {
			items[j] = ItemName(i, j)
		}
		shards[id] = items
	}
	c.dir = NewDirectory(shards)

	// Servers and their endpoints. With a data directory each server opens
	// its durable store and starts from verified crash recovery.
	endpoints := make(map[identity.NodeID]transport.Transport, cfg.NumServers)
	for i := 0; i < cfg.NumServers; i++ {
		id := c.serverIDs[i]
		so := o.With(obs.L("server", string(id)))
		c.verifiers[id] = c.newVerifier(so)
		scfg := server.Config{
			Identity:  idents[i],
			Registry:  c.reg,
			Directory: c.dir,
			Faults:    cfg.ServerFaults[i],
			Obs:       so,
			Verifier:  c.verifiers[id],
		}
		if cfg.CrashHook != nil {
			hook, sid := cfg.CrashHook, id
			scfg.CrashHook = func(point string, height uint64) error {
				return hook(sid, point, height)
			}
		}
		if cfg.pipelined() {
			// Cohorts must tolerate a block announcement overtaking its
			// predecessor's decision (the pipelined lookahead); the wait is
			// bounded so a dead round cannot park a handler forever.
			scfg.VoteLookahead = VoteLookahead
		}
		if cfg.DataDir == "" {
			scfg.Shard = newShardFor(c.dir, id, cfg, c.verifiers[id].Pool())
		} else {
			dopts := durable.Options{
				Dir:           filepath.Join(cfg.DataDir, string(id)),
				Fsync:         cfg.Fsync,
				SnapshotEvery: cfg.SnapshotEvery,
				Obs:           so,
			}
			if cfg.CrashHook != nil {
				hook, sid := cfg.CrashHook, id
				dopts.PreFsyncHook = func(nextHeight uint64) error {
					return hook(sid, "pre-fsync", nextHeight)
				}
			}
			dstore, err := durable.Open(dopts)
			if err != nil {
				return nil, fmt.Errorf("core: server %s: %w", id, err)
			}
			c.mu.Lock()
			c.closers = append(c.closers, dstore)
			c.mu.Unlock()
			c.stores[id] = dstore
			rec, err := dstore.Recover(durable.RecoveryConfig{
				Registry:     c.reg,
				Self:         id,
				ShardIDs:     c.dir.ShardItems(id),
				InitialValue: cfg.InitialValue,
				MultiVersion: cfg.MultiVersion,
			})
			if err != nil {
				return nil, fmt.Errorf("core: server %s: recovery: %w", id, err)
			}
			log, err := ledger.NewLogFromBlocks(rec.Blocks)
			if err != nil {
				return nil, fmt.Errorf("core: server %s: recovered log: %w", id, err)
			}
			if cfg.pipelined() {
				// The durability layer enforces its own height ordering
				// under pipelining instead of inheriting it from the
				// commit layer's scheduling.
				log.SetPersister(durable.NewOrderedPersister(dstore, uint64(len(rec.Blocks))))
			} else {
				log.SetPersister(dstore)
			}
			scfg.Shard = rec.Shard
			scfg.Log = log
			scfg.Snapshot = dstore
			c.recovered[id] = rec
		}
		srv, err := server.New(scfg)
		if err != nil {
			return nil, fmt.Errorf("core: server %s: %w", id, err)
		}
		c.servers[id] = srv
		ep, err := c.newEndpoint(idents[i], srv)
		if err != nil {
			return nil, err
		}
		endpoints[id] = ep
	}
	if cfg.TCP {
		c.wireTCP()
	}

	// Catch-up mesh (TFCommit only — a 2PC block carries no co-sign, so a
	// fetched block could not authenticate itself). Installed after every
	// endpoint exists because each server reaches its peers through its own
	// endpoint. With it, a cohort that times out waiting for a decision
	// asks its peers instead of failing, and a server that restarted behind
	// the cluster tip pulls and re-verifies the missing log suffix.
	if cfg.Protocol == ProtocolTFCommit {
		for _, id := range c.serverIDs {
			if err := c.servers[id].EnableCatchup(server.CatchupConfig{
				Transport: endpoints[id],
				Servers:   c.serverIDs,
			}); err != nil {
				return nil, fmt.Errorf("core: server %s: %w", id, err)
			}
			if cfg.ResolveInterval > 0 {
				stop := c.servers[id].StartResolver(cfg.ResolveInterval)
				c.mu.Lock()
				c.closers = append(c.closers, stopCloser(stop))
				c.mu.Unlock()
			}
		}
	}

	// The designated coordinator (paper §4.1: "one designated server acts
	// as the transaction coordinator responsible for terminating all
	// transactions") is the first server.
	c.coordID = c.serverIDs[0]
	coordSrv := c.servers[c.coordID]

	var committer BlockCommitter
	switch cfg.Protocol {
	case ProtocolTFCommit:
		// One coordinator instance per coordinating server: block r is
		// driven by server r mod Coordinators (paper §3: any server can
		// act as the coordinator). Every instance is safe to use because
		// the termination service on server 0 verifies all client
		// envelopes before any block reaches the commit protocol.
		coords := make([]*tfcommit.Coordinator, cfg.Coordinators)
		for i := 0; i < cfg.Coordinators; i++ {
			id := c.serverIDs[i]
			tcfg := tfcommit.Config{
				Identity:  idents[i],
				Registry:  c.reg,
				Transport: endpoints[id],
				Servers:   c.serverIDs,
				Local:     c.servers[id],
				Faults:    cfg.CoordinatorFaults,
				Obs:       o.With(obs.L("server", string(id))),
				// The coordinating server's own verification plane: the
				// co-sign verdict established before publication is then a
				// cache hit when the local cohort re-checks it at Decide.
				Verifier: c.verifiers[id],
			}
			if cfg.CrashHook != nil {
				hook, cid := cfg.CrashHook, id
				tcfg.CrashHook = func(point string, height uint64) error {
					return hook(cid, point, height)
				}
			}
			tfc, err := tfcommit.New(tcfg)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			coords[i] = tfc
		}
		c.tfc = coords[0]
		c.coords = coords
		if cfg.pipelined() {
			coordLog := coordSrv.Log()
			pipe, err := tfcommit.NewPipeline(tfcommit.PipelineConfig{
				Coordinators: coords,
				Depth:        cfg.Pipeline,
				Height:       uint64(coordLog.Len()),
				PrevHash:     coordLog.TipHash(),
			})
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			c.pipe = pipe
			committer = pipeAdapter{pipe}
		} else {
			committer = tfcAdapter{coords[0]}
		}
	case ProtocolTwoPC:
		tpc, err := twopc.New(twopc.Config{
			Identity:  idents[0],
			Transport: endpoints[c.coordID],
			Servers:   c.serverIDs,
			Local:     coordSrv,
		})
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		committer = tpcAdapter{tpc}
	default:
		return nil, fmt.Errorf("core: unknown protocol %v", cfg.Protocol)
	}

	c.batcher = NewPipelinedBatcherObs(committer, c.reg, cfg.BatchSize, cfg.BatchWait, cfg.Pipeline, o.With(obs.L("server", string(c.coordID))))
	// The termination service verifies envelopes through the designated
	// coordinator's plane, so a batched backend coalesces concurrent
	// Terminate calls — and its cohort's Terminate-time verdicts are warm.
	c.batcher.SetVerifier(c.verifiers[c.coordID])
	// A recovered coordinator keeps rejecting timestamps at or below the
	// recovered watermark instead of letting doomed blocks reach cohorts.
	c.batcher.Observe(coordSrv.LastCommitted())
	coordSrv.SetTerminator(c.batcher)
	built = true
	return c, nil
}

// stopCloser adapts a stop function (server.StartResolver's return) to the
// io.Closer the cluster's teardown list holds.
type stopCloser func()

func (f stopCloser) Close() error { f(); return nil }

// newVerifier builds one verification-plane instance per the cluster's
// Crypto backend selection. Batched instances are registered for teardown;
// a closed pool degrades to inline verification, so teardown order against
// in-flight work is safe either way.
func (c *Cluster) newVerifier(o *obs.Obs) crypto.Verifier {
	if c.cfg.Crypto != CryptoBatched {
		return crypto.NewSerial(c.reg)
	}
	v := crypto.NewBatched(crypto.Options{Registry: c.reg, Workers: c.cfg.CryptoWorkers, Obs: o})
	c.mu.Lock()
	c.closers = append(c.closers, verifierCloser{v})
	c.mu.Unlock()
	return v
}

// verifierCloser adapts crypto.Verifier.Close to io.Closer.
type verifierCloser struct{ v crypto.Verifier }

func (vc verifierCloser) Close() error { vc.v.Close(); return nil }

// ClientVerifier returns the verification plane shared by every client,
// light client, watchtower and auditor the cluster mints — shared on
// purpose: they all verify the same co-signed headers, so one verdict
// cache serves them all. Built lazily so clusters that never mint a
// client pay nothing.
func (c *Cluster) ClientVerifier() crypto.Verifier {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cliVer == nil {
		if c.cfg.Crypto != CryptoBatched {
			c.cliVer = crypto.NewSerial(c.reg)
		} else {
			v := crypto.NewBatched(crypto.Options{Registry: c.reg, Workers: c.cfg.CryptoWorkers, Obs: c.o.With(obs.L("server", "clients"))})
			c.closers = append(c.closers, verifierCloser{v})
			c.cliVer = v
		}
	}
	return c.cliVer
}

// CoordinatorStats sums decision-delivery counters across every rotating
// coordinator instance (zero value for non-TFCommit clusters). The
// simulation harness surfaces them in scenario results.
func (c *Cluster) CoordinatorStats() tfcommit.Stats {
	var total tfcommit.Stats
	for _, tfc := range c.coords {
		st := tfc.Stats()
		total.DecisionRetries += st.DecisionRetries
		total.DecisionUnacked += st.DecisionUnacked
	}
	return total
}

// Recovery returns what crash recovery found for a server (nil when the
// cluster is not durable or the id is unknown).
func (c *Cluster) Recovery(id identity.NodeID) *durable.Recovered {
	return c.recovered[id]
}

// DurableStore returns a server's durable store (nil when the cluster is
// not durable or the id is unknown). The simulation harness uses it to
// freeze a server's disk at a crash point (durable.Store.Fail).
func (c *Cluster) DurableStore(id identity.NodeID) *durable.Store {
	return c.stores[id]
}

// Network returns the in-process network the cluster runs on (nil in TCP
// mode). The simulation harness uses it to detach crashed servers.
func (c *Cluster) Network() *transport.LocalNetwork {
	if c.cfg.TCP {
		return nil
	}
	return c.net
}

func newShardFor(dir *Directory, id identity.NodeID, cfg Config, pool *crypto.Pool) *store.Shard {
	scfg := store.Config{MultiVersion: cfg.MultiVersion}
	// With the batched backend the verifier's worker pool doubles as the
	// shard's Merkle leaf hasher (store.Hasher), so per-shard root
	// recomputation in Vote/Apply fans out across the same cores.
	if pool != nil {
		scfg.Hasher = pool
	}
	return store.NewShard(dir.ShardItems(id), cfg.InitialValue, scfg)
}

// NewCoordinatorCommitter adapts a tfcommit.Coordinator into the batcher's
// committer interface (cmd/fides-server uses it for serial deployments).
func NewCoordinatorCommitter(c *tfcommit.Coordinator) BlockCommitter { return tfcAdapter{c} }

// NewPipelineCommitter adapts a tfcommit.Pipeline into the batcher's
// committer interface, including the position-sequencing retry capability
// (cmd/fides-server uses it for pipelined deployments).
func NewPipelineCommitter(p *tfcommit.Pipeline) BlockCommitter { return pipeAdapter{p} }

// tfcAdapter adapts tfcommit.Coordinator to BlockCommitter.
type tfcAdapter struct{ c *tfcommit.Coordinator }

func (a tfcAdapter) CommitBlock(ctx context.Context, txns []*txn.Transaction, envs []identity.Envelope) (*ledger.Block, bool, []int, error) {
	res, err := a.c.CommitBlock(ctx, txns, envs)
	if err != nil {
		return nil, false, nil, err
	}
	return res.Block, res.Committed, res.FailedTxns, nil
}

// pipeAdapter adapts tfcommit.Pipeline to BlockCommitter and
// RetryCommitter.
type pipeAdapter struct{ p *tfcommit.Pipeline }

func (a pipeAdapter) CommitBlock(ctx context.Context, txns []*txn.Transaction, envs []identity.Envelope) (*ledger.Block, bool, []int, error) {
	res, err := a.p.CommitBlock(ctx, txns, envs)
	if err != nil {
		return nil, false, nil, err
	}
	return res.Block, res.Committed, res.FailedTxns, nil
}

func (a pipeAdapter) EnqueueBlockRetry(ctx context.Context, txns []*txn.Transaction, envs []identity.Envelope, maxPrunes int, dropped func(int, *ledger.Block)) (func() (*ledger.Block, bool, error), error) {
	wait, err := a.p.Enqueue(ctx, txns, envs, maxPrunes, func(i int, r *tfcommit.Result) {
		dropped(i, r.Block)
	})
	if err != nil {
		return nil, err
	}
	return func() (*ledger.Block, bool, error) {
		res, err := wait()
		if err != nil {
			return nil, false, err
		}
		return res.Block, res.Committed, nil
	}, nil
}

// tpcAdapter adapts twopc.Coordinator to BlockCommitter.
type tpcAdapter struct{ c *twopc.Coordinator }

func (a tpcAdapter) CommitBlock(ctx context.Context, txns []*txn.Transaction, envs []identity.Envelope) (*ledger.Block, bool, []int, error) {
	res, err := a.c.CommitBlock(ctx, txns, envs)
	if err != nil {
		return nil, false, nil, err
	}
	return res.Block, res.Committed, nil, nil
}

// Registry returns the cluster's shared public-key registry.
func (c *Cluster) Registry() *identity.Registry { return c.reg }

// Obs returns the cluster's observability bundle (never nil).
func (c *Cluster) Obs() *obs.Obs { return c.o }

// Metrics returns the cluster-wide metrics registry every component
// reports into: per-server instruments carry a {server="sNN"} label, so
// one exposition aggregates the whole deployment.
func (c *Cluster) Metrics() *obs.Registry { return c.o.Metrics }

// Directory returns the item→server directory.
func (c *Cluster) Directory() *Directory { return c.dir }

// Servers returns the server ids in canonical order.
func (c *Cluster) Servers() []identity.NodeID {
	return append([]identity.NodeID(nil), c.serverIDs...)
}

// Server returns the server with the given id (nil if unknown).
func (c *Cluster) Server(id identity.NodeID) *server.Server { return c.servers[id] }

// ServerAt returns the i-th server.
func (c *Cluster) ServerAt(i int) *server.Server { return c.servers[c.serverIDs[i]] }

// Coordinator returns the designated coordinator's id.
func (c *Cluster) Coordinator() identity.NodeID { return c.coordID }

// VoteLookahead bounds how long a cohort parks a pipelined block
// announcement that overtook its predecessor's decision. Generous against
// slow fsyncs; a dead round resolves far sooner via the chain position
// being reused. Exported so cmd/fides-server arms cohorts with the same
// bound the in-process cluster uses.
const VoteLookahead = 15 * time.Second

// SetCoordinatorFaults swaps the coordinator's fault configuration
// (TFCommit clusters only; with rotation, on every coordinator).
func (c *Cluster) SetCoordinatorFaults(f tfcommit.Faults) error {
	if c.tfc == nil {
		return errors.New("core: cluster does not run TFCommit")
	}
	if c.pipe != nil {
		c.pipe.SetFaults(f)
		return nil
	}
	c.tfc.SetFaults(f)
	return nil
}

// Pipeline exposes the cluster's commit pipeline (nil when the cluster
// runs serial rounds); tests drive it directly for deterministic block
// sequencing.
func (c *Cluster) Pipeline() *tfcommit.Pipeline { return c.pipe }

// CommitBlockDirect runs one commit round over pre-built transactions and
// their client-signed envelopes, bypassing the batching service. It exists
// for tests and demonstrations that need precisely crafted histories (e.g.
// the failure scenarios of paper §5); normal clients terminate through
// Session.Commit.
func (c *Cluster) CommitBlockDirect(ctx context.Context, txns []*txn.Transaction, envs []identity.Envelope) (*ledger.Block, bool, error) {
	if c.tfc == nil {
		return nil, false, errors.New("core: direct commits require a TFCommit cluster")
	}
	// The batching service verifies every client envelope on Terminate
	// before it reaches the commit protocol; the coordinator's local
	// cohort relies on that check having happened (it skips the redundant
	// signature verification on the from==self path). Direct commits
	// bypass Terminate, so perform the same verification here, through
	// the coordinator's verification plane.
	if i, err := crypto.FirstError(c.verifiers[c.coordID].VerifyBatch(envs)); err != nil {
		return nil, false, fmt.Errorf("core: direct commit envelope %d: %w", i, err)
	}
	var committer BlockCommitter = tfcAdapter{c.tfc}
	if c.pipe != nil {
		// A pipelined cluster sequences all blocks — including direct
		// ones — through the pipeline, so heights cannot collide with
		// concurrently dispatched batches.
		committer = pipeAdapter{c.pipe}
	}
	block, committed, _, err := committer.CommitBlock(ctx, txns, envs)
	return block, committed, err
}

// SignTxn signs a transaction exactly as a client library would — over the
// canonical binary encoding — producing the envelope CommitBlockDirect
// expects.
func SignTxn(ident *identity.Identity, t *txn.Transaction) (identity.Envelope, error) {
	return identity.Seal(ident, t.AppendBinary(nil)), nil
}

// Endpoint attaches an already registered identity to the cluster's
// network and returns its transport, for callers that drive the wire
// protocol directly (the bench read drivers do).
func (c *Cluster) Endpoint(ident *identity.Identity) (transport.Transport, error) {
	return c.newEndpoint(ident, nil)
}

// NewClientIdentity registers and returns a fresh client identity, for
// callers that drive the wire protocol directly.
func (c *Cluster) NewClientIdentity() (*identity.Identity, error) {
	seq := c.clientSeq.Add(1)
	id := identity.NodeID(fmt.Sprintf("c%04d", seq))
	ident, err := identity.New(id, identity.RoleClient, nil)
	if err != nil {
		return nil, fmt.Errorf("core: client identity: %w", err)
	}
	c.reg.Register(ident.Public())
	return ident, nil
}

// NewClient creates and registers a fresh client attached to the cluster's
// network.
func (c *Cluster) NewClient() (*client.Client, error) {
	return c.NewClientWithTS(nil)
}

// NewClientWithTS creates a client drawing commit timestamps from the given
// shared source (nil for a private per-client clock). Benchmark drivers
// share one source across all clients, mirroring the paper's single
// timestamp-generating mechanism (§4.1).
func (c *Cluster) NewClientWithTS(ts txn.TSSource) (*client.Client, error) {
	seq := c.clientSeq.Add(1)
	id := identity.NodeID(fmt.Sprintf("c%04d", seq))
	ident, err := identity.New(id, identity.RoleClient, nil)
	if err != nil {
		return nil, fmt.Errorf("core: client identity: %w", err)
	}
	c.reg.Register(ident.Public())
	ep, err := c.newEndpoint(ident, nil)
	if err != nil {
		return nil, err
	}
	return client.New(client.Config{
		Identity:    ident,
		Registry:    c.reg,
		Transport:   ep,
		Directory:   c.dir,
		Coordinator: c.coordID,
		ClientID:    seq,
		TSSource:    ts,
		Obs:         c.o,
		// 2PC is the trusted baseline: its blocks carry no co-sign.
		TrustedMode: c.cfg.Protocol == ProtocolTwoPC,
	})
}

// NewLightClient creates and registers a light client attached to the
// cluster's network: a header-chain verifier serving proof-carrying reads
// (internal/lightclient). Many sessions and clients may share it — the
// header cache is shared state and sharing it is the point.
func (c *Cluster) NewLightClient() (*lightclient.Client, error) {
	seq := c.clientSeq.Add(1)
	id := identity.NodeID(fmt.Sprintf("lc%04d", seq))
	ident, err := identity.New(id, identity.RoleClient, nil)
	if err != nil {
		return nil, fmt.Errorf("core: light client identity: %w", err)
	}
	c.reg.Register(ident.Public())
	ep, err := c.newEndpoint(ident, nil)
	if err != nil {
		return nil, err
	}
	return lightclient.New(lightclient.Config{
		PeerConfig: peer.PeerConfig{
			Registry:  c.reg,
			Transport: ep,
			Servers:   c.serverIDs,
			Obs:       c.o,
			Verifier:  c.ClientVerifier(),
		},
		Layout: c.dir,
	})
}

// NewVerifyingClient creates a client whose sessions support ReadVerified,
// backed by the given light client (a fresh one when lc is nil). The light
// client is returned alongside so callers can drive Sync and read stats.
func (c *Cluster) NewVerifyingClient(lc *lightclient.Client) (*client.Client, *lightclient.Client, error) {
	if lc == nil {
		var err error
		if lc, err = c.NewLightClient(); err != nil {
			return nil, nil, err
		}
	}
	seq := c.clientSeq.Add(1)
	id := identity.NodeID(fmt.Sprintf("c%04d", seq))
	ident, err := identity.New(id, identity.RoleClient, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("core: client identity: %w", err)
	}
	c.reg.Register(ident.Public())
	ep, err := c.newEndpoint(ident, nil)
	if err != nil {
		return nil, nil, err
	}
	cl, err := client.New(client.Config{
		Identity:    ident,
		Registry:    c.reg,
		Transport:   ep,
		Directory:   c.dir,
		Coordinator: c.coordID,
		ClientID:    seq,
		Verifier:    lc,
		Obs:         c.o,
		TrustedMode: c.cfg.Protocol == ProtocolTwoPC,
	})
	if err != nil {
		return nil, nil, err
	}
	return cl, lc, nil
}

// NewWatchtower creates and registers a continuous integrity watchtower
// attached to the cluster's network (internal/watch), sampling every
// server every poll (SampleRate 1) — tests and the sim want deterministic
// coverage, not statistical. Production deployments tune the rate through
// cmd/fides-watch instead.
func (c *Cluster) NewWatchtower() (*watch.Watchtower, error) {
	seq := c.clientSeq.Add(1)
	id := identity.NodeID(fmt.Sprintf("wt%04d", seq))
	ident, err := identity.New(id, identity.RoleClient, nil)
	if err != nil {
		return nil, fmt.Errorf("core: watchtower identity: %w", err)
	}
	c.reg.Register(ident.Public())
	ep, err := c.newEndpoint(ident, nil)
	if err != nil {
		return nil, err
	}
	return watch.New(watch.Config{
		PeerConfig: peer.PeerConfig{
			Registry:    c.reg,
			Transport:   ep,
			Servers:     c.serverIDs,
			Coordinator: c.coordID,
			Obs:         c.o,
			Verifier:    c.ClientVerifier(),
		},
		Layout:     c.dir,
		SampleRate: 1,
	})
}

// NewAuditor creates and registers an external auditor for the cluster.
func (c *Cluster) NewAuditor() (*audit.Auditor, error) {
	seq := c.clientSeq.Add(1)
	id := identity.NodeID(fmt.Sprintf("auditor%02d", seq))
	ident, err := identity.New(id, identity.RoleClient, nil)
	if err != nil {
		return nil, fmt.Errorf("core: auditor identity: %w", err)
	}
	c.reg.Register(ident.Public())
	ep, err := c.newEndpoint(ident, nil)
	if err != nil {
		return nil, err
	}
	return audit.New(audit.Config{
		PeerConfig: peer.PeerConfig{
			Registry:    c.reg,
			Transport:   ep,
			Servers:     c.serverIDs,
			Coordinator: c.coordID,
			Verifier:    c.ClientVerifier(),
		},
		Identity:  ident,
		Directory: c.dir,
	})
}

// Audit runs a full audit with the given options.
func (c *Cluster) Audit(ctx context.Context, opts audit.Options) (*audit.Report, error) {
	a, err := c.NewAuditor()
	if err != nil {
		return nil, err
	}
	return a.Run(ctx, opts)
}

// Close shuts the cluster down: the termination service stops first, then
// any TCP endpoints are closed and drained.
func (c *Cluster) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	c.batcher.Close()
	c.mu.Lock()
	closers := c.closers
	c.closers = nil
	c.mu.Unlock()
	for _, cl := range closers {
		_ = cl.Close()
	}
}
