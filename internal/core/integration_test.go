package core

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/txn"
)

// testCluster builds a small fast cluster for integration tests.
func testCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	if cfg.NumServers == 0 {
		cfg.NumServers = 3
	}
	if cfg.ItemsPerShard == 0 {
		cfg.ItemsPerShard = 64
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 1
	}
	cfg.BatchWait = 500 * time.Microsecond
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestClusterCommitSingleTransaction(t *testing.T) {
	c := testCluster(t, Config{})
	ctx := context.Background()

	cl, err := c.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	s := cl.Begin()
	x := ItemName(0, 1)
	y := ItemName(1, 2)
	if _, err := s.Read(ctx, x); err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := s.Write(ctx, x, []byte("100")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := s.Write(ctx, y, []byte("200")); err != nil {
		t.Fatalf("blind write: %v", err)
	}
	res, err := s.Commit(ctx)
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	if !res.Committed {
		t.Fatalf("transaction aborted: %+v", res)
	}
	if res.Block == nil || res.Block.Height != 0 {
		t.Fatalf("unexpected block: %+v", res.Block)
	}

	// Every server must hold the block.
	for _, id := range c.Servers() {
		if got := c.Server(id).Log().Len(); got != 1 {
			t.Errorf("server %s log length = %d, want 1", id, got)
		}
	}

	// The datastore must reflect the writes.
	item, err := c.ServerAt(0).Shard().Get(x)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if !bytes.Equal(item.Value, []byte("100")) {
		t.Errorf("item %s = %q, want 100", x, item.Value)
	}
	if item.WTS != res.TS {
		t.Errorf("item wts = %v, want %v", item.WTS, res.TS)
	}

	// A second transaction reads what the first wrote.
	s2 := cl.Begin()
	v, err := s2.Read(ctx, y)
	if err != nil {
		t.Fatalf("read y: %v", err)
	}
	if !bytes.Equal(v, []byte("200")) {
		t.Errorf("read y = %q, want 200", v)
	}
	res2, err := s2.Commit(ctx)
	if err != nil {
		t.Fatalf("commit 2: %v", err)
	}
	if !res2.Committed {
		t.Fatalf("read-only txn aborted")
	}
}

func TestClusterCleanAudit(t *testing.T) {
	c := testCluster(t, Config{MultiVersion: true, BatchSize: 4})
	ctx := context.Background()

	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s := cl.Begin()
		a := ItemName(i%3, i%5)
		b := ItemName((i+1)%3, (i+3)%7)
		if _, err := s.Read(ctx, a); err != nil {
			t.Fatalf("read: %v", err)
		}
		if err := s.Write(ctx, a, []byte{byte('a' + i)}); err != nil {
			t.Fatalf("write: %v", err)
		}
		if _, err := s.Read(ctx, b); err != nil {
			t.Fatalf("read: %v", err)
		}
		res, err := s.Commit(ctx)
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
		if !res.Committed {
			t.Fatalf("txn %d aborted", i)
		}
	}

	report, err := c.Audit(ctx, audit.Options{CheckDatastore: true, Exhaustive: true, MultiVersion: true})
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	if !report.Clean() {
		for _, f := range report.Findings {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if len(report.Authoritative) == 0 {
		t.Fatal("no authoritative log")
	}
}

func TestClusterOCCAbortOnConflict(t *testing.T) {
	c := testCluster(t, Config{})
	ctx := context.Background()

	cl1, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	cl2, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	x := ItemName(0, 0)

	// Session 1 reads x, then session 2 commits a write to x, then session
	// 1 tries to commit a write based on its stale read.
	s1 := cl1.Begin()
	if _, err := s1.Read(ctx, x); err != nil {
		t.Fatal(err)
	}
	if err := s1.Write(ctx, x, []byte("s1")); err != nil {
		t.Fatal(err)
	}

	s2 := cl2.Begin()
	if _, err := s2.Read(ctx, x); err != nil {
		t.Fatal(err)
	}
	if err := s2.Write(ctx, x, []byte("s2")); err != nil {
		t.Fatal(err)
	}
	res2, err := s2.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Committed {
		t.Fatal("s2 should commit")
	}

	res1, err := s1.Commit(ctx)
	if err != nil {
		t.Fatalf("s1 commit: %v", err)
	}
	if res1.Committed {
		t.Fatal("s1 must abort: its read is stale")
	}
	if !res1.Rejected && res1.Block == nil {
		t.Fatal("aborted txn should carry a signed block or a rejection")
	}

	// The abort must not have been logged.
	if got := c.ServerAt(0).Log().Len(); got != 1 {
		t.Fatalf("log length = %d, want 1 (aborts are not logged)", got)
	}

	// The datastore keeps s2's value.
	item, err := c.ServerAt(0).Shard().Get(x)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(item.Value, []byte("s2")) {
		t.Fatalf("x = %q, want s2", item.Value)
	}
}

func TestClusterTwoPC(t *testing.T) {
	c := testCluster(t, Config{Protocol: ProtocolTwoPC})
	ctx := context.Background()

	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	s := cl.Begin()
	x := ItemName(0, 3)
	if _, err := s.Read(ctx, x); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(ctx, x, []byte("v")); err != nil {
		t.Fatal(err)
	}
	res, err := s.Commit(ctx)
	if err != nil {
		t.Fatalf("2pc commit: %v", err)
	}
	if !res.Committed {
		t.Fatalf("2pc txn aborted: %+v", res)
	}
	for _, id := range c.Servers() {
		if got := c.Server(id).Log().Len(); got != 1 {
			t.Errorf("server %s log length = %d, want 1", id, got)
		}
	}
	item, err := c.ServerAt(0).Shard().Get(x)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(item.Value, []byte("v")) {
		t.Errorf("x = %q, want v", item.Value)
	}
}

func TestClusterStaleTimestampRejected(t *testing.T) {
	c := testCluster(t, Config{})
	ctx := context.Background()

	clA, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	clB, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}

	// Client A commits several txns, advancing the global timestamp.
	for i := 0; i < 3; i++ {
		s := clA.Begin()
		if err := s.Write(ctx, ItemName(0, i), []byte("a")); err != nil {
			t.Fatal(err)
		}
		if res, err := s.Commit(ctx); err != nil || !res.Committed {
			t.Fatalf("setup commit %d: %v %+v", i, err, res)
		}
	}

	// Client B's clock is fresh; its first commit attempt carries a stale
	// timestamp and must be rejected with a clock hint, after which a retry
	// succeeds.
	s := clB.Begin()
	if err := s.Write(ctx, ItemName(1, 0), []byte("b")); err != nil {
		t.Fatal(err)
	}
	res, err := s.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rejected {
		t.Fatalf("expected rejection for stale timestamp, got %+v", res)
	}

	s2 := clB.Begin()
	if err := s2.Write(ctx, ItemName(1, 0), []byte("b2")); err != nil {
		t.Fatal(err)
	}
	res2, err := s2.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Committed {
		t.Fatalf("retry after clock fast-forward should commit, got %+v", res2)
	}
}

func TestClusterBatchedCommit(t *testing.T) {
	c := testCluster(t, Config{BatchSize: 8, NumServers: 4, ItemsPerShard: 128})
	ctx := context.Background()

	const n = 32
	results := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			cl, err := c.NewClient()
			if err != nil {
				results <- err
				return
			}
			for attempt := 0; attempt < 10; attempt++ {
				s := cl.Begin()
				item := ItemName(i%4, i*3%128)
				if _, err := s.Read(ctx, item); err != nil {
					results <- err
					return
				}
				if err := s.Write(ctx, item, []byte{byte(i)}); err != nil {
					results <- err
					return
				}
				res, err := s.Commit(ctx)
				if err != nil {
					results <- err
					return
				}
				if res.Committed {
					results <- nil
					return
				}
			}
			results <- context.DeadlineExceeded
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-results; err != nil {
			t.Fatalf("worker failed: %v", err)
		}
	}

	// All servers converge on the same log.
	ref := c.ServerAt(0).Log()
	for _, id := range c.Servers() {
		l := c.Server(id).Log()
		if l.Len() != ref.Len() {
			t.Errorf("server %s log length %d != %d", id, l.Len(), ref.Len())
		}
		if !bytes.Equal(l.TipHash(), ref.TipHash()) {
			t.Errorf("server %s tip hash diverges", id)
		}
	}

	report, err := c.Audit(ctx, audit.Options{CheckDatastore: true})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		for _, f := range report.Findings {
			t.Errorf("finding: %s", f)
		}
	}
}

func TestDirectoryOwners(t *testing.T) {
	c := testCluster(t, Config{NumServers: 3, ItemsPerShard: 10})
	for sIdx := 0; sIdx < 3; sIdx++ {
		for i := 0; i < 10; i++ {
			id := ItemName(sIdx, i)
			owner, ok := c.Directory().Owner(id)
			if !ok {
				t.Fatalf("no owner for %s", id)
			}
			if owner != ServerName(sIdx) {
				t.Errorf("owner of %s = %s, want %s", id, owner, ServerName(sIdx))
			}
		}
	}
	if _, ok := c.Directory().Owner(txn.ItemID("nope")); ok {
		t.Error("unknown item should have no owner")
	}
	if got := c.Directory().NumItems(); got != 30 {
		t.Errorf("NumItems = %d, want 30", got)
	}
}
