package core

import (
	"fmt"
	"sort"

	"repro/internal/identity"
	"repro/internal/txn"
)

// Directory is the lookup service mapping data items to the servers storing
// them (paper §4.1: clients resolve partitions through "a run-time library
// that provides a lookup and directory service"). It is immutable after
// construction and therefore safe for concurrent use.
type Directory struct {
	owners  map[txn.ItemID]identity.NodeID
	byShard map[identity.NodeID][]txn.ItemID
	items   []txn.ItemID
}

// NewDirectory builds a directory from per-server item lists.
func NewDirectory(shards map[identity.NodeID][]txn.ItemID) *Directory {
	d := &Directory{
		owners:  make(map[txn.ItemID]identity.NodeID),
		byShard: make(map[identity.NodeID][]txn.ItemID, len(shards)),
	}
	servers := make([]identity.NodeID, 0, len(shards))
	for id := range shards {
		servers = append(servers, id)
	}
	sort.Slice(servers, func(i, j int) bool { return servers[i] < servers[j] })
	for _, srv := range servers {
		ids := append([]txn.ItemID(nil), shards[srv]...)
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		d.byShard[srv] = ids
		for _, id := range ids {
			d.owners[id] = srv
		}
		d.items = append(d.items, ids...)
	}
	return d
}

// Owner returns the server storing the item.
func (d *Directory) Owner(id txn.ItemID) (identity.NodeID, bool) {
	owner, ok := d.owners[id]
	return owner, ok
}

// Items returns all item ids across all shards, grouped by shard in server
// order. The returned slice is shared; callers must not mutate it.
func (d *Directory) Items() []txn.ItemID {
	return d.items
}

// ShardItems returns the items stored by one server.
func (d *Directory) ShardItems(srv identity.NodeID) []txn.ItemID {
	return d.byShard[srv]
}

// NumItems returns the total item count.
func (d *Directory) NumItems() int { return len(d.items) }

// ItemName builds the canonical item id for shard index s and item index i,
// matching the naming NewCluster uses when it populates shards.
func ItemName(s, i int) txn.ItemID {
	return txn.ItemID(fmt.Sprintf("k%02d_%05d", s, i))
}
