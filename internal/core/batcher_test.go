package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/txn"
)

// scriptedCommitter records the batches it is asked to commit and returns
// canned outcomes.
type scriptedCommitter struct {
	mu      sync.Mutex
	batches [][]*txn.Transaction
	fail    error
	abort   bool
	height  uint64
}

func (c *scriptedCommitter) CommitBlock(_ context.Context, txns []*txn.Transaction, envs []identity.Envelope) (*ledger.Block, bool, []int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fail != nil {
		return nil, false, nil, c.fail
	}
	c.batches = append(c.batches, txns)
	b := &ledger.Block{Height: c.height, Decision: ledger.DecisionCommit}
	for _, t := range txns {
		b.Txns = append(b.Txns, ledger.RecordFromTransaction(t))
	}
	if c.abort {
		b.Decision = ledger.DecisionAbort
		return b, false, nil, nil
	}
	c.height++
	return b, true, nil, nil
}

func (c *scriptedCommitter) batchSizes() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, len(c.batches))
	for i, b := range c.batches {
		out[i] = len(b)
	}
	return out
}

// batcherEnv wires a Batcher to a scripted committer and a signing client.
func batcherEnv(t *testing.T, batchSize int) (*Batcher, *scriptedCommitter, func(id string, ts uint64, items ...txn.ItemID) identity.Envelope) {
	t.Helper()
	reg := identity.NewRegistry()
	cl, err := identity.New("c1", identity.RoleClient, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg.Register(cl.Public())
	committer := &scriptedCommitter{}
	b := NewBatcher(committer, reg, batchSize, time.Millisecond)
	t.Cleanup(b.Close)

	sign := func(id string, ts uint64, items ...txn.ItemID) identity.Envelope {
		tr := &txn.Transaction{ID: id, TS: txn.Timestamp{Time: ts, ClientID: 1}}
		for _, it := range items {
			tr.Writes = append(tr.Writes, txn.WriteEntry{ID: it, NewVal: []byte("v"), Blind: true})
		}
		payload, err := json.Marshal(tr)
		if err != nil {
			t.Fatal(err)
		}
		return identity.Seal(cl, payload)
	}
	return b, committer, sign
}

func TestBatcherCommitsSingle(t *testing.T) {
	b, committer, sign := batcherEnv(t, 4)
	resp, err := b.Terminate(context.Background(), sign("t1", 10, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Committed || resp.Block == nil {
		t.Fatalf("resp = %+v", resp)
	}
	if got := committer.batchSizes(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("batches = %v", got)
	}
}

func TestBatcherPacksConcurrentRequests(t *testing.T) {
	b, committer, sign := batcherEnv(t, 8)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Under scheduler noise (notably -race) the eight requests can
			// split across blocks, and a lower timestamp arriving after a
			// higher one committed is *rejected* per §4.3.1 — retry with a
			// fast-forwarded timestamp exactly as a real client does.
			ts := uint64(10 + i)
			for attempt := 0; attempt < 50; attempt++ {
				env := sign(fmt.Sprintf("t%d", i), ts, txn.ItemID(fmt.Sprintf("item%d", i)))
				resp, err := b.Terminate(context.Background(), env)
				if err != nil {
					errs <- err
					return
				}
				if resp.Committed {
					return
				}
				if !resp.Rejected {
					errs <- fmt.Errorf("t%d aborted", i)
					return
				}
				ts = resp.LatestTS.Time + 1 + uint64(i)
			}
			errs <- fmt.Errorf("t%d still rejected after retries", i)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// All eight should land in few blocks (usually one; the timer may split
	// them under scheduler noise, but never into eight singletons).
	if got := committer.batchSizes(); len(got) >= 8 {
		t.Errorf("no batching happened: %v", got)
	}
}

func TestBatcherDefersConflictingTxns(t *testing.T) {
	b, committer, sign := batcherEnv(t, 8)
	var wg sync.WaitGroup
	committed := make(chan struct{}, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// All four write the same item: they must never share a block.
			// Rejected attempts (stale timestamp after another writer won)
			// retry with a fresh timestamp, like a real client.
			ts := uint64(10 + i)
			for attempt := 0; attempt < 50; attempt++ {
				resp, err := b.Terminate(context.Background(), sign(fmt.Sprintf("t%d-%d", i, attempt), ts, "hot"))
				if err != nil {
					t.Errorf("t%d: %v", i, err)
					return
				}
				if resp.Committed {
					committed <- struct{}{}
					return
				}
				if resp.Rejected {
					ts = resp.LatestTS.Time + uint64(i) + 1
				}
			}
			t.Errorf("t%d starved", i)
		}(i)
	}
	wg.Wait()
	close(committed)
	if got := len(committed); got != 4 {
		t.Fatalf("committed = %d, want 4", got)
	}
	for _, size := range committer.batchSizes() {
		if size != 1 {
			t.Fatalf("conflicting txns batched together: %v", committer.batchSizes())
		}
	}
}

func TestBatcherRejectsStaleTimestamps(t *testing.T) {
	b, _, sign := batcherEnv(t, 1)
	ctx := context.Background()
	if _, err := b.Terminate(ctx, sign("t1", 100, "x")); err != nil {
		t.Fatal(err)
	}
	resp, err := b.Terminate(ctx, sign("t2", 50, "y"))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Rejected {
		t.Fatalf("stale ts accepted: %+v", resp)
	}
	if resp.LatestTS != (txn.Timestamp{Time: 100, ClientID: 1}) {
		t.Fatalf("hint = %v", resp.LatestTS)
	}
	// A fresh timestamp goes through.
	resp, err = b.Terminate(ctx, sign("t3", 101, "y"))
	if err != nil || !resp.Committed {
		t.Fatalf("fresh ts: %v %+v", err, resp)
	}
}

func TestBatcherPropagatesCommitterError(t *testing.T) {
	b, committer, sign := batcherEnv(t, 1)
	committer.fail = errors.New("cohort refused")
	_, err := b.Terminate(context.Background(), sign("t1", 10, "x"))
	if err == nil || !errors.Is(err, committer.fail) && err.Error() == "" {
		t.Fatalf("err = %v", err)
	}
}

func TestBatcherReportsAbort(t *testing.T) {
	b, committer, sign := batcherEnv(t, 1)
	committer.abort = true
	resp, err := b.Terminate(context.Background(), sign("t1", 10, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Committed || resp.Block == nil {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Block.Decision != ledger.DecisionAbort {
		t.Fatalf("decision = %v", resp.Block.Decision)
	}
}

func TestBatcherRejectsAfterClose(t *testing.T) {
	b, _, sign := batcherEnv(t, 1)
	b.Close()
	if _, err := b.Terminate(context.Background(), sign("t1", 10, "x")); !errors.Is(err, ErrBatcherClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestBatcherRejectsInvalidEnvelope(t *testing.T) {
	b, _, _ := batcherEnv(t, 1)
	bad := identity.Envelope{From: "nobody", Payload: []byte("{}"), Sig: []byte("x")}
	if _, err := b.Terminate(context.Background(), bad); err == nil {
		t.Fatal("invalid envelope accepted")
	}
}
