package core

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/identity"
	"repro/internal/tfcommit"
	"repro/internal/txn"
)

// pipelineBatch builds one deterministic single-transaction batch: a blind
// write of a distinct item with a strictly increasing timestamp, so the
// same sequence of batches produces the same committed state no matter
// which commit path drives it.
func pipelineBatch(t *testing.T, c *Cluster, ident *identity.Identity, i int) ([]*txn.Transaction, []identity.Envelope) {
	t.Helper()
	tx := &txn.Transaction{
		ID: fmt.Sprintf("pipe-%03d", i),
		TS: txn.Timestamp{Time: uint64(10 * (i + 1)), ClientID: 1},
		Writes: []txn.WriteEntry{{
			ID:     ItemName(i%3, i%8),
			NewVal: []byte(fmt.Sprintf("pv-%03d", i)),
			Blind:  true,
		}},
	}
	env, err := SignTxn(ident, tx)
	if err != nil {
		t.Fatal(err)
	}
	return []*txn.Transaction{tx}, []identity.Envelope{env}
}

// TestPipelinedMatchesSerial drives the identical block sequence through a
// serial cluster and through a pipelined cluster with rotating
// coordinators (all blocks enqueued up front, so the prepare/co-sign
// phases genuinely overlap predecessors' decision broadcasts), then
// requires the results to be byte-identical where the protocol is
// deterministic: per-block transaction records, decisions, and every
// involved server's Merkle root, plus the final shard roots — and a clean
// full audit (hash chain, co-signs, replayed roots, datastore check) on
// both sides. Only the collective signatures (fresh Schnorr nonces) and
// therefore the chaining hashes may differ.
func TestPipelinedMatchesSerial(t *testing.T) {
	runPipelinedMatchesSerial(t, CryptoSerial)
}

// TestPipelinedMatchesSerialBatchedCrypto is the same byte-equivalence
// contract with both clusters on the batched verification backend: the
// worker pool and verdict caches must not change a single committed byte.
func TestPipelinedMatchesSerialBatchedCrypto(t *testing.T) {
	runPipelinedMatchesSerial(t, CryptoBatched)
}

func runPipelinedMatchesSerial(t *testing.T, backend string) {
	const blocks = 12
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	serial := testCluster(t, Config{NumServers: 3, ItemsPerShard: 32, Crypto: backend})
	piped := testCluster(t, Config{NumServers: 3, ItemsPerShard: 32, Pipeline: 4, Coordinators: 2, Crypto: backend})
	if piped.Pipeline() == nil {
		t.Fatal("pipelined cluster has no pipeline")
	}

	serialIdent, err := serial.NewClientIdentity()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < blocks; i++ {
		txns, envs := pipelineBatch(t, serial, serialIdent, i)
		if _, ok, err := serial.CommitBlockDirect(ctx, txns, envs); err != nil || !ok {
			t.Fatalf("serial block %d: %v ok=%v", i, err, ok)
		}
	}

	pipedIdent, err := piped.NewClientIdentity()
	if err != nil {
		t.Fatal(err)
	}
	// Enqueue order is commit order; waiting happens concurrently, so up
	// to Depth rounds really are in flight at once.
	waits := make([]func() (*tfcommit.Result, error), 0, blocks)
	for i := 0; i < blocks; i++ {
		txns, envs := pipelineBatch(t, piped, pipedIdent, i)
		wait, err := piped.Pipeline().Enqueue(ctx, txns, envs, 0, nil)
		if err != nil {
			t.Fatalf("enqueue block %d: %v", i, err)
		}
		waits = append(waits, wait)
	}
	for i, wait := range waits {
		res, err := wait()
		if err != nil {
			t.Fatalf("pipelined block %d: %v", i, err)
		}
		if !res.Committed {
			t.Fatalf("pipelined block %d aborted", i)
		}
	}

	// Logs: same length, and per height the deterministic content —
	// transaction records, decision, roots — must match byte for byte.
	sl, pl := serial.ServerAt(0).Log(), piped.ServerAt(0).Log()
	if sl.Len() != blocks || pl.Len() != blocks {
		t.Fatalf("log lengths: serial %d, pipelined %d, want %d", sl.Len(), pl.Len(), blocks)
	}
	for h := uint64(0); h < blocks; h++ {
		sb, _ := sl.Get(h)
		pb, _ := pl.Get(h)
		if sb.Decision != pb.Decision {
			t.Fatalf("height %d: decisions differ (%v vs %v)", h, sb.Decision, pb.Decision)
		}
		if len(sb.Txns) != len(pb.Txns) {
			t.Fatalf("height %d: txn counts differ", h)
		}
		for i := range sb.Txns {
			if !bytes.Equal(sb.Txns[i].CanonicalBytes(), pb.Txns[i].CanonicalBytes()) {
				t.Fatalf("height %d txn %d: records differ", h, i)
			}
		}
		if len(sb.Roots) != len(pb.Roots) {
			t.Fatalf("height %d: root sets differ", h)
		}
		for id, r := range sb.Roots {
			if !bytes.Equal(r, pb.Roots[id]) {
				t.Fatalf("height %d: root of %s differs between serial and pipelined run", h, id)
			}
		}
	}
	for i := 0; i < 3; i++ {
		if !bytes.Equal(serial.ServerAt(i).Shard().Root(), piped.ServerAt(i).Shard().Root()) {
			t.Fatalf("server %d: final shard roots differ between serial and pipelined run", i)
		}
	}

	// Both runs withstand the full audit: chain, co-signs, replayed Merkle
	// roots, and the datastore check.
	for name, c := range map[string]*Cluster{"serial": serial, "pipelined": piped} {
		report, err := c.Audit(ctx, audit.Options{CheckDatastore: true})
		if err != nil {
			t.Fatalf("%s audit: %v", name, err)
		}
		if !report.Clean() {
			t.Fatalf("%s audit found: %+v", name, report.Findings)
		}
	}
}

// TestPipelineConflictingBlocks enqueues two overlapping-in-flight blocks
// with conflicting OCC read/write sets directly into the pipeline
// (bypassing the batcher's conflict deferral): block A writes an item,
// block B — already in flight behind it — read that item at its old write
// timestamp. Because cohorts validate in strict height order after
// applying A, B must abort exactly as it would serially, and the chain and
// audit stay clean.
func TestPipelineConflictingBlocks(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c := testCluster(t, Config{NumServers: 3, ItemsPerShard: 32, Pipeline: 4})
	ident, err := c.NewClientIdentity()
	if err != nil {
		t.Fatal(err)
	}

	x, y := ItemName(0, 1), ItemName(1, 1)
	ta := &txn.Transaction{
		ID: "conf-a", TS: txn.Timestamp{Time: 100, ClientID: 1},
		Writes: []txn.WriteEntry{{ID: x, NewVal: []byte("ax"), Blind: true}},
	}
	// B read x before A committed (WTS still zero) and writes y: a
	// read-write conflict with A that only materializes once A applies.
	tb := &txn.Transaction{
		ID: "conf-b", TS: txn.Timestamp{Time: 200, ClientID: 2},
		Reads:  []txn.ReadEntry{{ID: x, Value: []byte("0")}},
		Writes: []txn.WriteEntry{{ID: y, NewVal: []byte("by"), Blind: true}},
	}
	envA, err := SignTxn(ident, ta)
	if err != nil {
		t.Fatal(err)
	}
	envB, err := SignTxn(ident, tb)
	if err != nil {
		t.Fatal(err)
	}

	waitA, err := c.Pipeline().Enqueue(ctx, []*txn.Transaction{ta}, []identity.Envelope{envA}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitB, err := c.Pipeline().Enqueue(ctx, []*txn.Transaction{tb}, []identity.Envelope{envB}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	resA, errA := waitA()
	resB, errB := waitB()
	if errA != nil || !resA.Committed {
		t.Fatalf("block A: %v committed=%v", errA, resA != nil && resA.Committed)
	}
	if errB != nil {
		t.Fatalf("block B: %v", errB)
	}
	if resB.Committed {
		t.Fatal("block B committed despite reading a stale write timestamp")
	}

	// Only A is logged (aborts are not appended), on every server, and the
	// audit is clean.
	for i := 0; i < 3; i++ {
		if got := c.ServerAt(i).Log().Len(); got != 1 {
			t.Errorf("server %d log length = %d, want 1", i, got)
		}
	}
	report, err := c.Audit(ctx, audit.Options{CheckDatastore: true})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		t.Fatalf("audit found: %+v", report.Findings)
	}
}

// TestPipelinedClusterWorkloadAudit hammers a pipelined, rotating cluster
// with concurrent clients over deliberately overlapping items — so the
// batcher's in-flight conflict deferral, the speculative watermark, and
// the cohorts' in-order OCC validation all engage — then requires
// identical logs on every server and a clean datastore-checking audit.
func TestPipelinedClusterWorkloadAudit(t *testing.T) {
	c := testCluster(t, Config{
		NumServers: 3, ItemsPerShard: 16, BatchSize: 4,
		Pipeline: 3, Coordinators: 3,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const workers = 8
	const perWorker = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := c.NewClient()
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < perWorker; i++ {
				item := ItemName((w+i)%3, (w*i)%6) // overlapping on purpose
				committed := false
				for attempt := 0; attempt < 300 && !committed; attempt++ {
					s := cl.Begin()
					if _, err := s.Read(ctx, item); err != nil {
						errs <- err
						return
					}
					if err := s.Write(ctx, item, []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
						errs <- err
						return
					}
					res, err := s.Commit(ctx)
					if err != nil {
						errs <- err
						return
					}
					committed = res.Committed
				}
				if !committed {
					errs <- fmt.Errorf("worker %d txn %d never committed", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Identical tamper-proof logs everywhere.
	ref := c.ServerAt(0).Log()
	if ref.Len() == 0 {
		t.Fatal("no blocks committed")
	}
	for i := 1; i < 3; i++ {
		l := c.ServerAt(i).Log()
		if l.Len() != ref.Len() {
			t.Fatalf("server %d log length %d, want %d", i, l.Len(), ref.Len())
		}
		if !bytes.Equal(l.TipHash(), ref.TipHash()) {
			t.Fatalf("server %d tip hash differs", i)
		}
	}
	report, err := c.Audit(ctx, audit.Options{CheckDatastore: true})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		t.Fatalf("audit after pipelined workload found: %+v", report.Findings)
	}
}

// TestPipelinedKillAndRecover kills a durable pipelined cluster (rotating
// coordinators, several blocks in flight) in the middle of a hammering
// workload and restarts it on the same data directories: verified crash
// recovery must reproduce every server's log and shard root, the
// post-recovery audit must be clean, and the restarted pipeline must keep
// committing — the coordinator-crash-mid-pipeline scenario.
func TestPipelinedKillAndRecover(t *testing.T) {
	dataDir := t.TempDir()
	cfg := durableConfig(dataDir)
	cfg.Pipeline = 3
	cfg.Coordinators = 2

	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	commitSome(t, c, 8, 0)

	// Kill while background clients are mid-flight through the pipeline.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			cl, err := c.NewClient()
			if err != nil {
				return
			}
			for i := 100 * (g + 1); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s := cl.Begin()
				if err := s.Write(ctx, ItemName(i%3, 8+i%8), []byte("inflight")); err != nil {
					return
				}
				if _, err := s.Commit(ctx); err != nil {
					return // batcher closed mid-flight: expected at kill time
				}
			}
		}(g)
	}
	time.Sleep(10 * time.Millisecond)
	c.Close()
	close(stop)
	wg.Wait()

	heights := make(map[int]int)
	roots := make(map[int][]byte)
	for i := 0; i < cfg.NumServers; i++ {
		heights[i] = c.ServerAt(i).Log().Len()
		roots[i] = c.ServerAt(i).Shard().Root()
	}
	if heights[0] == 0 {
		t.Fatal("no blocks committed before the kill")
	}

	// Restart pipelined on the same data directories.
	c2, err := NewCluster(cfg)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer c2.Close()

	for i := 0; i < cfg.NumServers; i++ {
		srv := c2.ServerAt(i)
		if got := srv.Log().Len(); got != heights[i] {
			t.Errorf("server %d recovered %d blocks, want %d", i, got, heights[i])
		}
		if !bytes.Equal(srv.Shard().Root(), roots[i]) {
			t.Errorf("server %d recovered shard root differs from pre-kill root", i)
		}
		if rec := c2.Recovery(srv.ID()); rec == nil {
			t.Errorf("server %d has no recovery info", i)
		} else if len(rec.Warnings) > 0 {
			t.Errorf("server %d recovery warnings: %v", i, rec.Warnings)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	report, err := c2.Audit(ctx, audit.Options{CheckDatastore: true})
	if err != nil {
		t.Fatalf("post-recovery audit: %v", err)
	}
	if !report.Clean() {
		t.Fatalf("post-recovery audit found: %+v", report.Findings)
	}

	// The recovered pipeline keeps committing from the recovered height.
	commitSome(t, c2, 6, 500)
	if got := c2.ServerAt(0).Log().Len(); got <= heights[0] {
		t.Errorf("log did not grow after recovery: %d ≤ %d", got, heights[0])
	}
	report, err = c2.Audit(ctx, audit.Options{CheckDatastore: true})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		t.Fatalf("audit after post-recovery commits found: %+v", report.Findings)
	}
}

// TestPipelinedClusterOverTCP runs the pipelined commit path over real
// loopback TCP sockets: the lookahead wait then happens inside TCP-served
// handlers (background contexts, per-call connections), which must not
// head-of-line block the decisions the waiters depend on.
func TestPipelinedClusterOverTCP(t *testing.T) {
	c, err := NewCluster(Config{
		NumServers:    3,
		ItemsPerShard: 32,
		BatchSize:     2,
		BatchWait:     time.Millisecond,
		TCP:           true,
		Pipeline:      3,
		Coordinators:  2,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := c.NewClient()
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < 4; i++ {
				committed := false
				for attempt := 0; attempt < 200 && !committed; attempt++ {
					s := cl.Begin()
					item := ItemName(w%3, (w*7+i)%16)
					if err := s.Write(ctx, item, []byte{byte('a' + w), byte(i)}); err != nil {
						errs <- err
						return
					}
					res, err := s.Commit(ctx)
					if err != nil {
						errs <- err
						return
					}
					committed = res.Committed
				}
				if !committed {
					errs <- fmt.Errorf("tcp worker %d txn %d never committed", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	ref := c.ServerAt(0).Log()
	if ref.Len() == 0 {
		t.Fatal("no blocks committed over TCP")
	}
	for _, id := range c.Servers() {
		l := c.Server(id).Log()
		if l.Len() != ref.Len() || !bytes.Equal(l.TipHash(), ref.TipHash()) {
			t.Errorf("server %s log diverges", id)
		}
	}
	report, err := c.Audit(ctx, audit.Options{CheckDatastore: true})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		t.Fatalf("audit after pipelined TCP run found: %+v", report.Findings)
	}
}

// TestPipelineConfigValidation: the pipeline knobs are TFCommit-only.
func TestPipelineConfigValidation(t *testing.T) {
	if _, err := NewCluster(Config{Protocol: ProtocolTwoPC, Pipeline: 2}); err == nil {
		t.Fatal("2PC cluster accepted a pipeline depth")
	}
	if _, err := NewCluster(Config{Protocol: ProtocolTwoPC, Coordinators: 2}); err == nil {
		t.Fatal("2PC cluster accepted coordinator rotation")
	}
}
