package core

import (
	"context"
	"testing"

	"repro/internal/audit"
	"repro/internal/identity"
	"repro/internal/server"
)

// TestAuditAttributionMatrix checks both directions of the paper's
// detection guarantee for every offline-detectable fault class: (i) the
// faulty server is implicated, and (ii) no honest server is falsely
// accused — "a benign server can always defend itself against falsified
// accusations" (§1). The designated coordinator may additionally be
// implicated for faults that corrupt block production.
func TestAuditAttributionMatrix(t *testing.T) {
	cases := []struct {
		name       string
		faulty     int // index of the faulty server (never 0, the coordinator)
		faults     server.Faults
		opts       audit.Options
		multiVer   bool
		allowCoord bool // the coordinator may legitimately appear in findings
	}{
		{
			name:   "stale-reads",
			faulty: 1,
			faults: server.Faults{StaleReads: true},
		},
		{
			name:     "skip-apply",
			faulty:   2,
			faults:   server.Faults{SkipApply: true},
			opts:     audit.Options{CheckDatastore: true, Exhaustive: true, MultiVersion: true},
			multiVer: true,
		},
		{
			name:   "corrupt-apply",
			faulty: 3,
			faults: server.Faults{CorruptApplyValue: []byte("junk")},
			opts:   audit.Options{CheckDatastore: true},
		},
		{
			name:   "fake-root-collusion",
			faulty: 1,
			faults: server.Faults{FakeRootInVote: true},
			opts:   audit.Options{CheckDatastore: true},
		},
		{
			name:   "tamper-served-log",
			faulty: 2,
			faults: server.Faults{TamperBlock: &server.TamperSpec{
				Height: 1, Item: ItemName(1, 1), NewVal: []byte("forged"),
			}},
			allowCoord: true, // tampered co-sign findings also suspect block production
		},
		{
			name:   "reorder-log",
			faulty: 3,
			faults: server.Faults{ReorderLog: true},
		},
		{
			name:   "drop-tail",
			faulty: 1,
			faults: server.Faults{DropTailBlocks: 2},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := faultCluster(t, Config{MultiVersion: tc.multiVer})
			ctx := context.Background()
			cl, err := c.NewClient()
			if err != nil {
				t.Fatal(err)
			}

			// Honest warm-up traffic across every shard, then enable the
			// fault, then more traffic so the fault has something to bite.
			for shard := 0; shard < 4; shard++ {
				commitRW(t, ctx, cl, ItemName(shard, 1), "warm", true)
			}
			c.ServerAt(tc.faulty).SetFaults(tc.faults)
			for shard := 0; shard < 4; shard++ {
				commitRW(t, ctx, cl, ItemName(shard, 1), "attacked", true)
			}

			report, err := c.Audit(ctx, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if report.Clean() {
				t.Fatalf("fault %s escaped the audit", tc.name)
			}
			faultyID := ServerName(tc.faulty)
			if !report.Implicates(faultyID) {
				t.Fatalf("faulty server %s not implicated: %v", faultyID, report.Findings)
			}
			// No honest server is accused.
			allowed := map[identity.NodeID]bool{faultyID: true}
			if tc.allowCoord {
				allowed[c.Coordinator()] = true
			}
			for _, f := range report.Findings {
				for _, s := range f.Servers {
					if !allowed[s] {
						t.Errorf("honest server %s falsely accused by %s", s, f)
					}
				}
			}
		})
	}
}
