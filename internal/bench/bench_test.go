package bench

import (
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// quickOpts keeps experiment smoke tests fast.
func quickOpts() Options {
	return Options{Requests: 40, Runs: 1, NetworkLatency: 20 * time.Microsecond, Seed: 1}
}

func TestRunTFCommitPoint(t *testing.T) {
	m, err := Run(RunConfig{
		Servers: 3, ItemsPerShard: 64, Batch: 8, Requests: 40,
		NetworkLatency: 20 * time.Microsecond, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Committed != 40 {
		t.Fatalf("committed = %d, want 40", m.Committed)
	}
	if m.ThroughputTPS <= 0 || m.LatencyMS <= 0 {
		t.Fatalf("non-positive metrics: %+v", m)
	}
	if m.Blocks == 0 {
		t.Fatal("no blocks committed")
	}
	if m.MHTUpdateMS < 0 {
		t.Fatal("negative MHT time")
	}
}

func TestRunTwoPCPoint(t *testing.T) {
	m, err := Run(RunConfig{
		Servers: 3, ItemsPerShard: 64, Batch: 1, Requests: 20,
		Protocol: core.ProtocolTwoPC, NetworkLatency: 20 * time.Microsecond, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Committed != 20 {
		t.Fatalf("committed = %d, want 20", m.Committed)
	}
	// 2PC performs no Merkle work during voting.
	if m.MHTUpdateMS != 0 {
		t.Fatalf("2PC should report no MHT time, got %v", m.MHTUpdateMS)
	}
}

func TestBatchingImprovesThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("comparative run")
	}
	// Enough requests for several full blocks: the batching advantage is a
	// steady-state amortization (block protocol cost shared by batchmates)
	// and only emerges once clients sustain load across multiple block
	// rounds — with the binary codec and accurate sub-millisecond latency
	// simulation, tiny runs finish before batching can pay off.
	small, err := Run(RunConfig{
		Servers: 3, ItemsPerShard: 1024, Batch: 1, Requests: 300,
		NetworkLatency: 100 * time.Microsecond, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Run(RunConfig{
		Servers: 3, ItemsPerShard: 1024, Batch: 30, Requests: 300,
		NetworkLatency: 100 * time.Microsecond, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's central batching claim (Figure 13): larger blocks lift
	// throughput. Allow generous slack for CI noise.
	if large.ThroughputTPS < small.ThroughputTPS {
		t.Errorf("batch 30 tput %.0f < batch 1 tput %.0f", large.ThroughputTPS, small.ThroughputTPS)
	}
	if large.Blocks >= small.Blocks {
		t.Errorf("batching produced %d blocks, unbatched %d", large.Blocks, small.Blocks)
	}
}

func TestFig12Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	var sb strings.Builder
	rows, err := Fig12(&sb, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 (servers 3..7)", len(rows))
	}
	for _, r := range rows {
		if r.TFC.Committed == 0 || r.TwoPC.Committed == 0 {
			t.Fatalf("empty run in row %+v", r)
		}
		// The trust-free protocol must not be cheaper than the trusted one.
		if r.LatRatio < 1.0 {
			t.Errorf("servers=%d: TFCommit latency ratio %.2f < 1", r.Servers, r.LatRatio)
		}
	}
	if !strings.Contains(sb.String(), "Figure 12") {
		t.Error("printer emitted no header")
	}
}

func TestFig13Fig14Fig15Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	opts := quickOpts()
	for name, fn := range map[string]func(io.Writer, Options) ([]*Metrics, error){
		"fig13": Fig13, "fig14": Fig14, "fig15": Fig15,
	} {
		var sb strings.Builder
		ms, err := fn(&sb, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(ms) == 0 {
			t.Fatalf("%s: no data points", name)
		}
		for _, m := range ms {
			if m.Committed == 0 || m.ThroughputTPS <= 0 {
				t.Fatalf("%s: empty data point %+v", name, m)
			}
		}
	}
}
