package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
)

// Options scale an experiment suite.
type Options struct {
	// Requests per data point (paper: 1000).
	Requests int
	// Runs averages each data point over this many runs (paper: 3).
	Runs int
	// NetworkLatency is the simulated one-way latency.
	NetworkLatency time.Duration
	// Seed makes the workloads deterministic.
	Seed int64
}

func (o *Options) applyDefaults() {
	if o.Requests <= 0 {
		o.Requests = 1000
	}
	if o.Runs <= 0 {
		o.Runs = 3
	}
	if o.NetworkLatency == 0 {
		o.NetworkLatency = 250 * time.Microsecond
	}
}

// averaged runs a config Runs times and averages the metrics, matching the
// paper's "each data point is an average of 3 runs".
func averaged(cfg RunConfig, runs int) (*Metrics, error) {
	return averagedWith(cfg, runs, nil, nil)
}

// averagedWith is averaged with two per-run hooks: perRun may adjust the
// run's config (e.g. point it at a fresh data directory) and return a
// cleanup; attach is handed to RunWith to fasten an observer onto each
// run's live cluster. Rate fields are averaged over the runs; counters
// are summed, with Metrics.Runs recording the divisor.
func averagedWith(cfg RunConfig, runs int, perRun func(*RunConfig) (cleanup func(), err error), attach func(*core.Cluster) (cleanup func(), err error)) (*Metrics, error) {
	acc := Metrics{Runs: runs}
	for i := 0; i < runs; i++ {
		cfg.Seed += int64(i+1) * 104729
		run := cfg
		var cleanup func()
		if perRun != nil {
			var err error
			if cleanup, err = perRun(&run); err != nil {
				return nil, err
			}
		}
		m, err := RunWith(run, attach)
		if cleanup != nil {
			cleanup()
		}
		if err != nil {
			return nil, err
		}
		acc.Config = m.Config
		acc.Committed += m.Committed
		acc.Aborted += m.Aborted
		acc.Rejected += m.Rejected
		acc.Elapsed += m.Elapsed
		acc.ThroughputTPS += m.ThroughputTPS
		acc.LatencyMS += m.LatencyMS
		acc.EndToEndMS += m.EndToEndMS
		acc.P50MS += m.P50MS
		acc.P95MS += m.P95MS
		acc.P99MS += m.P99MS
		acc.MHTUpdateMS += m.MHTUpdateMS
		acc.Blocks += m.Blocks
		if m.MaxMS > acc.MaxMS {
			acc.MaxMS = m.MaxMS
		}
	}
	f := float64(runs)
	acc.ThroughputTPS /= f
	acc.LatencyMS /= f
	acc.EndToEndMS /= f
	acc.P50MS /= f
	acc.P95MS /= f
	acc.P99MS /= f
	acc.MHTUpdateMS /= f
	return &acc, nil
}

// Fig12Row is one data point of Figure 12 (2PC vs TFCommit).
type Fig12Row struct {
	Servers                int
	TwoPC, TFC             *Metrics
	LatRatio, ThroughRatio float64
}

// Fig12 reproduces Figure 12: 2PC vs TFCommit with one transaction per
// block, varying the number of servers from 3 to 7 (paper §6.1). The paper
// reports TFCommit ≈1.8× slower and 2PC ≈2.1× higher throughput.
func Fig12(w io.Writer, opts Options) ([]Fig12Row, error) {
	opts.applyDefaults()
	fmt.Fprintf(w, "Figure 12 — 2PC vs TFCommit (1 txn/block, 10000 items/shard, %d txns, avg of %d runs)\n",
		opts.Requests, opts.Runs)
	fmt.Fprintf(w, "%-8s %12s %12s %12s %12s %9s %9s %9s %10s %10s\n",
		"servers", "2pc_tps", "2pc_lat_ms", "tfc_tps", "tfc_lat_ms",
		"tfc_p50", "tfc_p95", "tfc_p99", "lat_ratio", "tps_ratio")

	var rows []Fig12Row
	for servers := 3; servers <= 7; servers++ {
		base := RunConfig{
			Servers: servers, Batch: 1, Requests: opts.Requests,
			NetworkLatency: opts.NetworkLatency, Seed: opts.Seed,
		}
		cfg2pc := base
		cfg2pc.Protocol = core.ProtocolTwoPC
		m2pc, err := averaged(cfg2pc, opts.Runs)
		if err != nil {
			return nil, fmt.Errorf("fig12 2pc servers=%d: %w", servers, err)
		}
		cfgTFC := base
		cfgTFC.Protocol = core.ProtocolTFCommit
		mTFC, err := averaged(cfgTFC, opts.Runs)
		if err != nil {
			return nil, fmt.Errorf("fig12 tfc servers=%d: %w", servers, err)
		}
		row := Fig12Row{
			Servers: servers, TwoPC: m2pc, TFC: mTFC,
			LatRatio:     mTFC.LatencyMS / m2pc.LatencyMS,
			ThroughRatio: m2pc.ThroughputTPS / mTFC.ThroughputTPS,
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-8d %12.0f %12.3f %12.0f %12.3f %9.3f %9.3f %9.3f %10.2f %10.2f\n",
			servers, m2pc.ThroughputTPS, m2pc.LatencyMS,
			mTFC.ThroughputTPS, mTFC.LatencyMS,
			mTFC.P50MS, mTFC.P95MS, mTFC.P99MS, row.LatRatio, row.ThroughRatio)
	}
	return rows, nil
}

// Fig13 reproduces Figure 13: throughput and latency of TFCommit with 5
// servers while the number of transactions per block grows from 2 to 120
// (paper §6.2: latency −2.6×, throughput +2.5× at ≥80).
func Fig13(w io.Writer, opts Options) ([]*Metrics, error) {
	opts.applyDefaults()
	fmt.Fprintf(w, "Figure 13 — transactions per block (5 servers, 10000 items/shard, %d txns, avg of %d runs)\n",
		opts.Requests, opts.Runs)
	fmt.Fprintf(w, "%-10s %12s %12s %9s %9s %9s %10s\n",
		"txns/blk", "tput_tps", "lat_ms", "p50_ms", "p95_ms", "p99_ms", "blocks")

	var out []*Metrics
	for _, batch := range []int{2, 20, 40, 60, 80, 100, 120} {
		m, err := averaged(RunConfig{
			Servers: 5, Batch: batch, Requests: opts.Requests,
			NetworkLatency: opts.NetworkLatency, Seed: opts.Seed,
		}, opts.Runs)
		if err != nil {
			return nil, fmt.Errorf("fig13 batch=%d: %w", batch, err)
		}
		out = append(out, m)
		fmt.Fprintf(w, "%-10d %12.0f %12.3f %9.3f %9.3f %9.3f %10d\n",
			batch, m.ThroughputTPS, m.LatencyMS, m.P50MS, m.P95MS, m.P99MS, m.Blocks/opts.Runs)
	}
	return out, nil
}

// Fig14 reproduces Figure 14: TFCommit scalability with the number of
// servers (3 to 9) at 100 transactions per block, including the
// Merkle-tree update time per block (paper §6.3: +47% throughput, −33%
// latency from 3 to 9 servers; MHT update time falls as the ~500
// operations per block spread across more shards).
func Fig14(w io.Writer, opts Options) ([]*Metrics, error) {
	opts.applyDefaults()
	fmt.Fprintf(w, "Figure 14 — number of servers (100 txn/block, 10000 items/shard, %d txns, avg of %d runs)\n",
		opts.Requests, opts.Runs)
	fmt.Fprintf(w, "%-8s %12s %12s %9s %9s %9s %14s\n",
		"servers", "tput_tps", "lat_ms", "p50_ms", "p95_ms", "p99_ms", "mht_upd_ms")

	var out []*Metrics
	for servers := 3; servers <= 9; servers++ {
		m, err := averaged(RunConfig{
			Servers: servers, Batch: 100, Requests: opts.Requests,
			NetworkLatency: opts.NetworkLatency, Seed: opts.Seed,
		}, opts.Runs)
		if err != nil {
			return nil, fmt.Errorf("fig14 servers=%d: %w", servers, err)
		}
		out = append(out, m)
		fmt.Fprintf(w, "%-8d %12.0f %12.3f %9.3f %9.3f %9.3f %14.3f\n",
			servers, m.ThroughputTPS, m.LatencyMS, m.P50MS, m.P95MS, m.P99MS, m.MHTUpdateMS)
	}
	return out, nil
}

// Durability measures what the write-ahead log costs the TFCommit hot
// path: the same workload as Figure 13's 100-txn/block point, run with
// servers in memory and then with the WAL under each fsync discipline.
// Every run starts on a fresh data directory so recovery replay does not
// pollute the measurement.
func Durability(w io.Writer, opts Options) ([]*Metrics, error) {
	opts.applyDefaults()
	fmt.Fprintf(w, "Durability — WAL cost on TFCommit (5 servers, 100 txn/block, %d txns, avg of %d runs)\n",
		opts.Requests, opts.Runs)
	fmt.Fprintf(w, "%-10s %12s %12s %9s %9s %9s %10s\n",
		"wal", "tput_tps", "lat_ms", "p50_ms", "p95_ms", "p99_ms", "blocks")

	modes := []struct {
		name    string
		durable bool
		mode    durable.FsyncMode
	}{
		{"memory", false, 0},
		{"off", true, durable.FsyncOff},
		{"group", true, durable.FsyncGroup},
		{"always", true, durable.FsyncAlways},
	}
	var out []*Metrics
	for _, m := range modes {
		cfg := RunConfig{
			Servers: 5, Batch: 100, Requests: opts.Requests,
			NetworkLatency: opts.NetworkLatency, Seed: opts.Seed,
			Fsync: m.mode,
		}
		var perRun func(*RunConfig) (func(), error)
		if m.durable {
			perRun = func(run *RunConfig) (func(), error) {
				tmp, err := os.MkdirTemp("", "fidesbench-wal-*")
				if err != nil {
					return nil, fmt.Errorf("durability: %w", err)
				}
				run.DataDir = tmp
				return func() { _ = os.RemoveAll(tmp) }, nil
			}
		}
		acc, err := averagedWith(cfg, opts.Runs, perRun, nil)
		if err != nil {
			return nil, fmt.Errorf("durability wal=%s: %w", m.name, err)
		}
		out = append(out, acc)
		fmt.Fprintf(w, "%-10s %12.0f %12.3f %9.3f %9.3f %9.3f %10d\n",
			m.name, acc.ThroughputTPS, acc.LatencyMS, acc.P50MS, acc.P95MS, acc.P99MS, acc.Blocks/opts.Runs)
	}
	return out, nil
}

// PipelinePoint names one pipeline sweep configuration.
type PipelinePoint struct {
	Name         string
	Pipeline     int
	Coordinators int
}

// PipelineSweep is the default -exp pipeline configuration set: the serial
// baseline, growing lookahead depths with the single designated
// coordinator, and rotation across all five servers.
var PipelineSweep = []PipelinePoint{
	{"serial", 1, 1},
	{"depth2", 2, 1},
	{"depth4", 4, 1},
	{"depth4+rotate", 4, 5},
}

// pipelinePoints are the (block size, one-way latency) operating points of
// the pipeline sweep. The hash chain caps what a pipeline can overlap —
// block h+1's prepare/vote/co-sign phases cannot start before block h's
// co-sign, so only h's decision round trip, applies and fsyncs hide — and
// that cap makes speedup ≈ (6L+C)/(4L+C) for block CPU cost C and one-way
// latency L. The sweep therefore crosses both regimes: large blocks at
// intra-datacenter latency (C ≫ L: CPU-bound, overlap buys little on a
// saturated box) and smaller blocks at cross-AZ/cross-region latencies
// (C ≲ 6L: latency-bound, the pipeline converts commit-path idle into the
// next block's work).
var pipelinePoints = []struct {
	Batch   int
	Latency time.Duration
}{
	{16, 250 * time.Microsecond},
	{16, 1 * time.Millisecond},
	{16, 2500 * time.Microsecond},
	{8, 2500 * time.Microsecond},
	{8, 5 * time.Millisecond},
}

// Pipeline measures the pipelined TFCommit commit path under sustained
// closed-loop load: 5 servers and a client population sized to keep every
// in-flight block full plus a queued successor, so the measurement
// exercises protocol overlap rather than arrival limits (the PR 1 Fig13
// caveat). Speedup is throughput relative to the serial row at the same
// operating point; see pipelinePoints for why the win grows with latency
// and shrinks with block size.
func Pipeline(w io.Writer, opts Options) ([]*Metrics, error) {
	opts.applyDefaults()
	const clients = 128
	fmt.Fprintf(w, "Pipeline — pipelined TFCommit vs serial (5 servers, %d clients, %d txns, avg of %d runs)\n",
		clients, opts.Requests, opts.Runs)
	fmt.Fprintf(w, "%-14s %6s %9s %9s %7s %12s %12s %9s %9s %9s %10s %9s\n",
		"config", "batch", "lat_1way", "pipeline", "coords", "tput_tps", "lat_ms",
		"p50_ms", "p95_ms", "p99_ms", "blocks", "speedup")

	var out []*Metrics
	for _, pp := range pipelinePoints {
		var serialTPS float64
		for _, pt := range PipelineSweep {
			cfg := RunConfig{
				Servers: 5, Batch: pp.Batch, Requests: opts.Requests, Clients: clients,
				NetworkLatency: pp.Latency, Seed: opts.Seed,
				Pipeline: pt.Pipeline, Coordinators: pt.Coordinators,
			}
			acc, err := averaged(cfg, opts.Runs)
			if err != nil {
				return nil, fmt.Errorf("pipeline %s batch=%d @%v: %w", pt.Name, pp.Batch, pp.Latency, err)
			}
			out = append(out, acc)
			if pt.Pipeline <= 1 && pt.Coordinators <= 1 {
				serialTPS = acc.ThroughputTPS
			}
			speedup := 0.0
			if serialTPS > 0 {
				speedup = acc.ThroughputTPS / serialTPS
			}
			fmt.Fprintf(w, "%-14s %6d %9s %9d %7d %12.0f %12.3f %9.3f %9.3f %9.3f %10d %8.2fx\n",
				pt.Name, pp.Batch, pp.Latency, pt.Pipeline, pt.Coordinators, acc.ThroughputTPS,
				acc.LatencyMS, acc.P50MS, acc.P95MS, acc.P99MS, acc.Blocks/opts.Runs, speedup)
		}
	}
	return out, nil
}

// Fig15 reproduces Figure 15: TFCommit performance with 5 servers and 100
// transactions per block while the shard size grows from 1000 to 10000
// items (paper §6.4: +15% latency, −14% throughput, driven by the log₂(n)
// Merkle path length).
func Fig15(w io.Writer, opts Options) ([]*Metrics, error) {
	opts.applyDefaults()
	fmt.Fprintf(w, "Figure 15 — items per shard (5 servers, 100 txn/block, %d txns, avg of %d runs)\n",
		opts.Requests, opts.Runs)
	fmt.Fprintf(w, "%-10s %12s %12s %9s %9s %9s %14s\n",
		"items", "tput_tps", "lat_ms", "p50_ms", "p95_ms", "p99_ms", "mht_upd_ms")

	var out []*Metrics
	for items := 1000; items <= 10000; items += 1000 {
		m, err := averaged(RunConfig{
			Servers: 5, Batch: 100, ItemsPerShard: items, Requests: opts.Requests,
			NetworkLatency: opts.NetworkLatency, Seed: opts.Seed,
		}, opts.Runs)
		if err != nil {
			return nil, fmt.Errorf("fig15 items=%d: %w", items, err)
		}
		out = append(out, m)
		fmt.Fprintf(w, "%-10d %12.0f %12.3f %9.3f %9.3f %9.3f %14.3f\n",
			items, m.ThroughputTPS, m.LatencyMS, m.P50MS, m.P95MS, m.P99MS, m.MHTUpdateMS)
	}
	return out, nil
}
