package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/peer"
	"repro/internal/watch"
)

// WatchMode is one attachment mode of the watchtower overhead sweep.
type WatchMode struct {
	// Name labels the mode in tables and report rows.
	Name string
	// Attach runs a watchtower alongside the workload when set.
	Attach bool
	// SampleRate is the watchtower's per-server, per-poll verified-read
	// sampling probability (0 = tail-only).
	SampleRate float64
}

// watchModes is the -exp watch sweep: no watchtower (the baseline every
// overhead is stated against), tail-only (streaming re-verification of
// every block plus per-poll header probes), and tail plus sampled
// proof-carrying reads. At the sweep's 10ms poll cadence a 0.05 rate is
// five sampled reads per server per second — 20× what the fides-watch
// daemon defaults to (0.25 per server at 1s polls), so the sampled row
// is an upper bound on a real deployment's sampling cost.
var watchModes = []WatchMode{
	{"watch-off", false, 0},
	{"watch-tail", true, 0},
	{"watch-sample", true, 0.05},
}

// WatchResult is one mode's measured outcome: the cluster-side workload
// metrics plus the watchtower's own verification counters (summed over
// the runs).
type WatchResult struct {
	Mode           string
	M              *Metrics
	BlocksVerified uint64
	SampledReads   uint64
	Findings       uint64
}

// watchPollInterval paces the background watchtower during a bench run:
// fast enough that the tail never falls behind a 1-txn/block workload,
// slow enough that polling cost, not poll scheduling, is what the sweep
// measures.
const watchPollInterval = 10 * time.Millisecond

// attachWatchtower fastens a watchtower onto a live cluster and polls it
// on a background ticker until the returned cleanup runs; the cleanup
// takes a final drain poll and folds the watchtower's counters into res.
func attachWatchtower(cl *core.Cluster, rate float64, seed int64, res *WatchResult) (func(), error) {
	ident, err := cl.NewClientIdentity()
	if err != nil {
		return nil, err
	}
	ep, err := cl.Endpoint(ident)
	if err != nil {
		return nil, err
	}
	wt, err := watch.New(watch.Config{
		PeerConfig: peer.PeerConfig{
			Registry:    cl.Registry(),
			Transport:   ep,
			Servers:     cl.Servers(),
			Coordinator: cl.Coordinator(),
			Verifier:    cl.ClientVerifier(),
		},
		Layout:     cl.Directory(),
		SampleRate: rate,
		SampleSeed: seed,
	})
	if err != nil {
		return nil, err
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(watchPollInterval)
		defer t.Stop()
		ctx := context.Background()
		for {
			// A transport error rotates the tail source inside Poll; the
			// next tick retries.
			_ = wt.Poll(ctx)
			select {
			case <-stop:
				return
			case <-t.C:
			}
		}
	}()
	return func() {
		close(stop)
		<-done
		_ = wt.Poll(context.Background()) // drain to the final tip
		st := wt.Status()
		res.BlocksVerified += st.BlocksVerified
		res.SampledReads += st.SampledReads
		res.Findings += st.Findings
		_ = ep.Close()
	}, nil
}

// Watch measures what continuous integrity monitoring costs the cluster
// it watches: the Figure 12 reference point (5 servers, 1 txn/block)
// driven with no watchtower, with a tail-only watchtower, and with tail
// plus sampled verified reads. The acceptance bound for this subsystem
// is tail+sampling within 5% of the watchtower-off throughput — the
// watchtower reads FetchBlocks pages and header probes off the serving
// path, so its cost is bandwidth, not commit-path work.
func Watch(w io.Writer, opts Options) ([]*WatchResult, error) {
	opts.applyDefaults()
	fmt.Fprintf(w, "Watch — watchtower overhead at the Figure 12 reference point (5 servers, 1 txn/block, %d txns, avg of %d runs)\n",
		opts.Requests, opts.Runs)
	fmt.Fprintf(w, "%-14s %12s %12s %9s %9s %12s %10s %9s\n",
		"mode", "tput_tps", "lat_ms", "p50_ms", "p99_ms", "blocks_verif", "samples", "rel_tps")

	var out []*WatchResult
	var baseTPS float64
	for _, mode := range watchModes {
		res := &WatchResult{Mode: mode.Name}
		cfg := RunConfig{
			Servers: 5, Batch: 1, Requests: opts.Requests,
			NetworkLatency: opts.NetworkLatency, Seed: opts.Seed,
		}
		var attach func(*core.Cluster) (func(), error)
		if mode.Attach {
			rate := mode.SampleRate
			attach = func(cl *core.Cluster) (func(), error) {
				return attachWatchtower(cl, rate, opts.Seed, res)
			}
		}
		m, err := averagedWith(cfg, opts.Runs, nil, attach)
		if err != nil {
			return nil, fmt.Errorf("watch %s: %w", mode.Name, err)
		}
		res.M = m
		if res.Findings > 0 {
			return nil, fmt.Errorf("watch %s: %d integrity findings on an honest cluster", mode.Name, res.Findings)
		}
		out = append(out, res)

		rel := ""
		if !mode.Attach {
			baseTPS = m.ThroughputTPS
		} else if baseTPS > 0 {
			rel = fmt.Sprintf("%.1f%%", 100*m.ThroughputTPS/baseTPS)
		}
		fmt.Fprintf(w, "%-14s %12.0f %12.3f %9.3f %9.3f %12d %10d %9s\n",
			mode.Name, m.ThroughputTPS, m.LatencyMS, m.P50MS, m.P99MS,
			res.BlocksVerified/uint64(opts.Runs), res.SampledReads/uint64(opts.Runs), rel)
	}
	return out, nil
}

// RowFromWatch flattens a watch-sweep result into a report row, keyed by
// its mode through ReadPath so the three modes stay distinct rows.
func RowFromWatch(r *WatchResult) Row {
	row := RowFromMetrics("watch", r.M)
	row.ReadPath = r.Mode
	return row
}
