package bench

import (
	"testing"
	"time"

	"repro/internal/core"
)

// TestVerifiedReadsWithin2xOfPlain pins the subsystem's performance
// acceptance bound: at read batch ≥ 8, proof-carrying verified reads
// sustain at least half the plain-read item throughput. In practice the
// verified path wins outright (one multiproof RPC versus eight concurrent
// plain RPCs), so the 2× bound leaves a wide margin against CI noise.
func TestVerifiedReadsWithin2xOfPlain(t *testing.T) {
	if testing.Short() {
		t.Skip("read-path throughput comparison skipped in -short")
	}
	const (
		readOps = 120
		readers = 8
		batch   = 8
	)
	run := func(verified bool) float64 {
		cluster, err := core.NewCluster(core.Config{
			NumServers:     5,
			ItemsPerShard:  2048,
			BatchSize:      16,
			BatchWait:      2 * time.Millisecond,
			NetworkLatency: 100 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cluster.Close()
		res, err := DriveReads(cluster, ReadsPoint{ReadFraction: 1.0, Verified: verified, ReadBatch: batch}, readOps, readers, 42)
		if err != nil {
			t.Fatalf("verified=%v: %v", verified, err)
		}
		return res.ItemsPerSec
	}

	plain := run(false)
	verified := run(true)
	t.Logf("batch=%d: plain %.0f items/s, verified %.0f items/s (%.2fx)", batch, plain, verified, verified/plain)
	if verified < plain/2 {
		t.Fatalf("verified reads %.0f items/s below half of plain %.0f items/s", verified, plain)
	}
}
