package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
)

// cryptoLatency is the sweep's simulated one-way latency: fast enough
// that verification CPU, not the network, bounds throughput.
const cryptoLatency = 50 * time.Microsecond

// cryptoPoint is one cell of the -exp crypto sweep.
type cryptoPoint struct {
	Backend  string
	MaxProcs int
	Batch    int
}

// cryptoSweep crosses verification backend × core count × block size in a
// CPU-bound intra-DC configuration: with the simulated network this fast,
// signature verification dominates the commit path, which is exactly the
// regime the batched backend targets. Core counts above the machine's are
// skipped at run time (GOMAXPROCS cannot add cores).
func cryptoSweep() []cryptoPoint {
	var pts []cryptoPoint
	for _, backend := range []string{core.CryptoSerial, core.CryptoBatched} {
		for _, procs := range []int{1, 4} {
			for _, batch := range []int{16, 64, 128} {
				pts = append(pts, cryptoPoint{Backend: backend, MaxProcs: procs, Batch: batch})
			}
		}
	}
	return pts
}

// Crypto measures the verification plane: serial vs batched backend, at 1
// and 4 cores, across block sizes, in the CPU-bound intra-DC fig12-style
// configuration (5 servers, 50µs one-way latency). The speedup column is
// batched-vs-serial at the same (procs, batch) cell — the tentpole's
// "≥2× on multi-core" claim is read off the procs=4 rows on a machine
// that has 4 cores to give.
func Crypto(w io.Writer, opts Options) ([]*Metrics, error) {
	opts.applyDefaults()
	avail := runtime.NumCPU()
	fmt.Fprintf(w, "Crypto — verification backend sweep (5 servers, 50µs one-way, %d txns, avg of %d runs, %d cores available)\n",
		opts.Requests, opts.Runs, avail)
	fmt.Fprintf(w, "%-9s %6s %6s %12s %12s %9s %9s %10s %9s\n",
		"backend", "procs", "batch", "tput_tps", "lat_ms", "p50_ms", "p99_ms", "blocks", "speedup")

	// serialTPS[procs][batch] anchors the speedup column.
	serialTPS := map[int]map[int]float64{}
	var out []*Metrics
	for _, pt := range cryptoSweep() {
		if pt.MaxProcs > avail {
			fmt.Fprintf(w, "%-9s %6d %6d %12s (skipped: only %d cores)\n",
				pt.Backend, pt.MaxProcs, pt.Batch, "-", avail)
			continue
		}
		cfg := RunConfig{
			Servers: 5, Batch: pt.Batch, Requests: opts.Requests,
			NetworkLatency: cryptoLatency, Seed: opts.Seed,
			Crypto: pt.Backend, MaxProcs: pt.MaxProcs,
		}
		acc, err := averaged(cfg, opts.Runs)
		if err != nil {
			return nil, fmt.Errorf("crypto %s procs=%d batch=%d: %w", pt.Backend, pt.MaxProcs, pt.Batch, err)
		}
		out = append(out, acc)
		if pt.Backend == core.CryptoSerial {
			if serialTPS[pt.MaxProcs] == nil {
				serialTPS[pt.MaxProcs] = map[int]float64{}
			}
			serialTPS[pt.MaxProcs][pt.Batch] = acc.ThroughputTPS
		}
		speedup := 0.0
		if base := serialTPS[pt.MaxProcs][pt.Batch]; base > 0 {
			speedup = acc.ThroughputTPS / base
		}
		fmt.Fprintf(w, "%-9s %6d %6d %12.0f %12.3f %9.3f %9.3f %10d %8.2fx\n",
			pt.Backend, pt.MaxProcs, pt.Batch, acc.ThroughputTPS, acc.LatencyMS,
			acc.P50MS, acc.P99MS, acc.Blocks/opts.Runs, speedup)
	}
	return out, nil
}
