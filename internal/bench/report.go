package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Row is one machine-readable data point of a benchmark report: the
// configuration knobs that identify the point plus the measured series.
// cmd/fidesbench emits these as BENCH_PR*.json so the performance
// trajectory can be tracked PR over PR. Every field is per-run (rates are
// averaged, counters divided by Runs), so rows are comparable regardless
// of how many runs produced them.
type Row struct {
	Experiment    string  `json:"experiment"`
	Protocol      string  `json:"protocol"`
	Servers       int     `json:"servers"`
	Batch         int     `json:"batch"`
	ItemsPerShard int     `json:"items_per_shard"`
	Requests      int     `json:"requests"`
	Runs          int     `json:"runs"`
	LatencyUS     int64   `json:"net_latency_us"`
	Fsync         string  `json:"fsync,omitempty"`
	Pipeline      int     `json:"pipeline,omitempty"`
	Coordinators  int     `json:"coordinators,omitempty"`
	Crypto        string  `json:"crypto,omitempty"`
	MaxProcs      int     `json:"max_procs,omitempty"`
	TPS           float64 `json:"tps"`
	LatMS         float64 `json:"lat_ms"`
	EndToEndMS    float64 `json:"end_to_end_ms"`
	P50MS         float64 `json:"p50_ms,omitempty"`
	P95MS         float64 `json:"p95_ms,omitempty"`
	P99MS         float64 `json:"p99_ms,omitempty"`
	MaxMS         float64 `json:"max_ms,omitempty"`
	MHTUpdateMS   float64 `json:"mht_update_ms"`
	Blocks        float64 `json:"blocks_per_run"`
	Aborted       float64 `json:"aborted_per_run"`
	Rejected      float64 `json:"rejected_per_run"`

	// Read-path experiment fields (-exp reads). ReadPath distinguishes
	// "verified" (proof-carrying) from "plain" rows; for these rows TPS is
	// read items/sec, LatMS the mean read-op latency and Batch the items
	// per read op.
	ReadFraction float64 `json:"read_fraction,omitempty"`
	ReadPath     string  `json:"read_path,omitempty"`
	WriteTxns    float64 `json:"write_txns_per_run,omitempty"`
	StaleRetries float64 `json:"stale_retries_per_run,omitempty"`
}

// RowFromReads flattens a read-path result into a report row.
func RowFromReads(r *ReadsResult, opts Options) Row {
	runs := opts.Runs
	if runs < 1 {
		runs = 1
	}
	f := float64(runs)
	path := "plain"
	if r.Point.Verified {
		path = "verified"
	}
	return Row{
		Experiment:   "reads",
		Protocol:     "tfcommit",
		Servers:      5,
		Batch:        r.Point.ReadBatch,
		Requests:     r.ReadOps / runs,
		Runs:         runs,
		LatencyUS:    opts.NetworkLatency.Microseconds(),
		TPS:          r.ItemsPerSec,
		LatMS:        r.OpLatencyMS,
		ReadFraction: r.Point.ReadFraction,
		ReadPath:     path,
		WriteTxns:    float64(r.WriteTxns) / f,
		StaleRetries: float64(r.StaleRetries) / f,
	}
}

// RowFromMetrics flattens an (optionally multi-run) Metrics into a
// per-run report row.
func RowFromMetrics(experiment string, m *Metrics) Row {
	runs := m.Runs
	if runs < 1 {
		runs = 1
	}
	f := float64(runs)
	r := Row{
		Experiment:    experiment,
		Protocol:      m.Config.Protocol.String(),
		Servers:       m.Config.Servers,
		Batch:         m.Config.Batch,
		ItemsPerShard: m.Config.ItemsPerShard,
		Requests:      m.Config.Requests,
		Runs:          runs,
		LatencyUS:     m.Config.NetworkLatency.Microseconds(),
		TPS:           m.ThroughputTPS,
		LatMS:         m.LatencyMS,
		EndToEndMS:    m.EndToEndMS,
		P50MS:         m.P50MS,
		P95MS:         m.P95MS,
		P99MS:         m.P99MS,
		MaxMS:         m.MaxMS,
		MHTUpdateMS:   m.MHTUpdateMS,
		Blocks:        float64(m.Blocks) / f,
		Aborted:       float64(m.Aborted) / f,
		Rejected:      float64(m.Rejected) / f,
	}
	if m.Config.DataDir != "" {
		r.Fsync = m.Config.Fsync.String()
	}
	r.Pipeline = m.Config.Pipeline
	r.Coordinators = m.Config.Coordinators
	r.Crypto = m.Config.Crypto
	r.MaxProcs = m.Config.MaxProcs
	return r
}

// Report is the file-level envelope of a machine-readable benchmark run.
type Report struct {
	Schema      string    `json:"schema"`
	GeneratedAt time.Time `json:"generated_at"`
	Options     Options   `json:"options"`
	Rows        []Row     `json:"rows"`
}

// WriteReport writes the rows as an indented JSON report file.
func WriteReport(path string, opts Options, rows []Row) error {
	rep := Report{
		Schema:      "fidesbench/v1",
		GeneratedAt: time.Now().UTC().Truncate(time.Second),
		Options:     opts,
		Rows:        rows,
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: report: %w", err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("bench: report: %w", err)
	}
	return nil
}
