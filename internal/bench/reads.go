package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/lightclient"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/wire"
)

// ReadsPoint is one data point of the read-path experiment: a closed-loop
// mixed workload at a given read fraction, with reads taken in batches of
// ReadBatch items either through the verified (proof-carrying) path or the
// plain execution-layer path.
type ReadsPoint struct {
	ReadFraction float64
	Verified     bool
	ReadBatch    int
}

// ReadsResult is the measured outcome of one ReadsPoint.
type ReadsResult struct {
	Point ReadsPoint
	// ReadOps is the number of read operations (batches) performed.
	ReadOps int
	// ItemsRead is ReadOps × ReadBatch.
	ItemsRead int
	// WriteTxns is the number of write transactions committed alongside.
	WriteTxns int
	// Elapsed is the measured wall time.
	Elapsed time.Duration
	// ItemsPerSec is the read throughput in items per second — the series
	// the verified-within-2× acceptance bound is stated over.
	ItemsPerSec float64
	// OpLatencyMS is the mean wall time of one read operation.
	OpLatencyMS float64
	// StaleRetries counts verified reads re-issued after a benign
	// staleness race (verified mode only).
	StaleRetries int
}

// readsSweep is the default -exp reads grid: read fraction × verified ×
// batch (satellite: "read fraction × verified/unverified × batch").
var readsSweep = []ReadsPoint{
	{0.90, false, 1}, {0.90, true, 1},
	{0.90, false, 8}, {0.90, true, 8},
	{0.90, false, 32}, {0.90, true, 32},
	{1.00, false, 1}, {1.00, true, 1},
	{1.00, false, 8}, {1.00, true, 8},
	{1.00, false, 32}, {1.00, true, 32},
}

// Reads measures the read-dominated serving path the light client exists
// for: closed-loop readers performing batched point reads against a
// cluster that keeps committing writes, comparing plain execution-layer
// reads (integrity only under a later audit) with proof-carrying verified
// reads (integrity at read time).
//
// Fairness of the comparison: an unverified "batch" is ReadBatch plain
// read RPCs issued concurrently (they have no batched message), while a
// verified batch is a single RPC answered with one multiproof — each path
// uses the best mechanics available to it. The acceptance bound for this
// subsystem is verified ≥ half the unverified items/sec at batch ≥ 8.
func Reads(w io.Writer, opts Options) ([]*ReadsResult, error) {
	opts.applyDefaults()
	const (
		servers = 5
		readers = 16
	)
	fmt.Fprintf(w, "Reads — proof-carrying vs plain reads (5 servers, %d readers, %d read ops/point, avg of %d runs)\n",
		readers, opts.Requests, opts.Runs)
	fmt.Fprintf(w, "%-10s %-10s %6s %14s %14s %12s %10s %8s\n",
		"read_frac", "path", "batch", "items_per_s", "ops_per_s", "op_lat_ms", "writes", "retries")

	var out []*ReadsResult
	var unverifiedBase float64 // items/sec of the plain path at the same fraction+batch
	for _, pt := range readsSweep {
		acc := &ReadsResult{Point: pt}
		for run := 0; run < opts.Runs; run++ {
			res, err := runReadsPoint(pt, opts, servers, readers, opts.Seed+int64(run+1)*104729)
			if err != nil {
				return nil, fmt.Errorf("reads f=%.2f verified=%v batch=%d: %w", pt.ReadFraction, pt.Verified, pt.ReadBatch, err)
			}
			acc.ReadOps += res.ReadOps
			acc.ItemsRead += res.ItemsRead
			acc.WriteTxns += res.WriteTxns
			acc.Elapsed += res.Elapsed
			acc.ItemsPerSec += res.ItemsPerSec
			acc.OpLatencyMS += res.OpLatencyMS
			acc.StaleRetries += res.StaleRetries
		}
		f := float64(opts.Runs)
		acc.ItemsPerSec /= f
		acc.OpLatencyMS /= f
		out = append(out, acc)

		path := "plain"
		if pt.Verified {
			path = "verified"
		}
		ratio := ""
		if !pt.Verified {
			unverifiedBase = acc.ItemsPerSec
		} else if unverifiedBase > 0 {
			ratio = fmt.Sprintf("  (%.2fx of plain)", acc.ItemsPerSec/unverifiedBase)
		}
		fmt.Fprintf(w, "%-10.2f %-10s %6d %14.0f %14.0f %12.3f %10d %8d%s\n",
			pt.ReadFraction, path, pt.ReadBatch, acc.ItemsPerSec,
			acc.ItemsPerSec/float64(pt.ReadBatch), acc.OpLatencyMS,
			acc.WriteTxns/opts.Runs, acc.StaleRetries, ratio)
	}
	return out, nil
}

// runReadsPoint runs one (fraction, path, batch) measurement.
func runReadsPoint(pt ReadsPoint, opts Options, servers, readers int, seed int64) (*ReadsResult, error) {
	cluster, err := core.NewCluster(core.Config{
		NumServers:      servers,
		ItemsPerShard:   2048,
		BatchSize:       16,
		BatchWait:       2 * time.Millisecond,
		NetworkLatency:  opts.NetworkLatency,
		PreciseNetDelay: true,
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	return DriveReads(cluster, pt, opts.Requests, readers, seed)
}

// DriveReads runs the mixed read/write closed loop against an existing
// cluster and measures the read path. Exported for tests that want the
// measurement on their own cluster (e.g. the within-2× regression bound).
func DriveReads(cluster *core.Cluster, pt ReadsPoint, readOps, readers int, seed int64) (*ReadsResult, error) {
	ctx := context.Background()
	sharedTS := txn.NewSharedClock(1)
	nShards := len(cluster.Servers())

	// Seed every shard with one committed write so each has a co-signed
	// root to authenticate reads against (and the write path is warm).
	seedClient, err := cluster.NewClientWithTS(sharedTS)
	if err != nil {
		return nil, err
	}
	for s := 0; s < nShards; s++ {
		if err := commitWrite(ctx, seedClient, core.ItemName(s, 0), []byte("seed")); err != nil {
			return nil, err
		}
	}

	// One shared light client: the header cache is shared state across all
	// readers, which is the intended deployment shape.
	var lc *lightclient.Client
	if pt.Verified {
		if lc, err = cluster.NewLightClient(); err != nil {
			return nil, err
		}
		if _, err := lc.Sync(ctx); err != nil {
			return nil, err
		}
	}

	perReader := make([]int, readers)
	for i := 0; i < readOps; i++ {
		perReader[i%readers]++
	}

	type result struct {
		readOps   int
		items     int
		writes    int
		latencies time.Duration
		err       error
	}
	results := make(chan result, readers)
	var wg sync.WaitGroup
	start := time.Now()
	for ri := 0; ri < readers; ri++ {
		quota := perReader[ri]
		if quota == 0 {
			continue
		}
		wg.Add(1)
		go func(ri, quota int) {
			defer wg.Done()
			res := result{}
			defer func() { results <- res }()
			rng := rand.New(rand.NewSource(seed + int64(ri)*7919))

			// Writer identity for the mixed fraction.
			wc, err := cluster.NewClientWithTS(sharedTS)
			if err != nil {
				res.err = err
				return
			}
			// Plain-read identity: raw wire reads under one long-lived
			// transaction id per reader (reads open the txn implicitly;
			// one buffer per reader, not per read).
			var plainEP transport.Transport
			var plainID string
			if !pt.Verified {
				ident, err := cluster.NewClientIdentity()
				if err != nil {
					res.err = err
					return
				}
				if plainEP, err = cluster.Endpoint(ident); err != nil {
					res.err = err
					return
				}
				plainID = fmt.Sprintf("bench-reader-%d", ri)
			}

			for n := 0; n < quota; n++ {
				// Mixed workload: a write transaction with probability
				// 1 - readFraction.
				if rng.Float64() >= pt.ReadFraction {
					shard := rng.Intn(nShards)
					item := core.ItemName(shard, 1+rng.Intn(2047))
					if err := commitWrite(ctx, wc, item, []byte(fmt.Sprintf("w%d-%d", ri, n))); err != nil {
						res.err = err
						return
					}
					res.writes++
				}
				// One batched read op from a single random shard.
				shard := rng.Intn(nShards)
				ids := pickItems(rng, shard, 2048, pt.ReadBatch)
				opStart := time.Now()
				if pt.Verified {
					if _, err := lc.ReadVerified(ctx, ids...); err != nil {
						res.err = fmt.Errorf("verified read: %w", err)
						return
					}
				} else if err := plainReadBatch(ctx, plainEP, cluster, plainID, ids); err != nil {
					res.err = fmt.Errorf("plain read: %w", err)
					return
				}
				res.latencies += time.Since(opStart)
				res.readOps++
				res.items += len(ids)
			}
		}(ri, quota)
	}
	wg.Wait()
	close(results)

	out := &ReadsResult{Point: pt}
	var latSum time.Duration
	for r := range results {
		if r.err != nil {
			return nil, r.err
		}
		out.ReadOps += r.readOps
		out.ItemsRead += r.items
		out.WriteTxns += r.writes
		latSum += r.latencies
	}
	out.Elapsed = time.Since(start)
	if out.Elapsed > 0 {
		out.ItemsPerSec = float64(out.ItemsRead) / out.Elapsed.Seconds()
	}
	if out.ReadOps > 0 {
		out.OpLatencyMS = (latSum / time.Duration(out.ReadOps)).Seconds() * 1000
	}
	if lc != nil {
		out.StaleRetries = lc.Stats().StaleRetries
	}
	return out, nil
}

// pickItems draws batch distinct item ids from one shard.
func pickItems(rng *rand.Rand, shard, shardSize, batch int) []txn.ItemID {
	if batch > shardSize {
		batch = shardSize
	}
	seen := make(map[int]struct{}, batch)
	ids := make([]txn.ItemID, 0, batch)
	for len(ids) < batch {
		i := rng.Intn(shardSize)
		if _, dup := seen[i]; dup {
			continue
		}
		seen[i] = struct{}{}
		ids = append(ids, core.ItemName(shard, i))
	}
	return ids
}

// plainReadBatch issues the batch as concurrent plain read RPCs — the
// strongest unverified baseline available (same wall-clock shape as one
// batched call, none of the proof work).
func plainReadBatch(ctx context.Context, ep transport.Transport, cluster *core.Cluster, txnID string, ids []txn.ItemID) error {
	if len(ids) == 1 {
		return plainRead(ctx, ep, cluster, txnID, ids[0])
	}
	errs := make(chan error, len(ids))
	for _, id := range ids {
		go func(id txn.ItemID) {
			errs <- plainRead(ctx, ep, cluster, txnID, id)
		}(id)
	}
	for range ids {
		if err := <-errs; err != nil {
			return err
		}
	}
	return nil
}

func plainRead(ctx context.Context, ep transport.Transport, cluster *core.Cluster, txnID string, id txn.ItemID) error {
	owner, ok := cluster.Directory().Owner(id)
	if !ok {
		return fmt.Errorf("bench: no owner for %s", id)
	}
	msg, err := transport.NewMessage(wire.MsgRead, &wire.ReadReq{TxnID: txnID, ID: id})
	if err != nil {
		return err
	}
	resp, err := ep.Call(ctx, owner, msg)
	if err != nil {
		return err
	}
	var rr wire.ReadResp
	return resp.Decode(&rr)
}

// commitWrite commits one read-modify-write transaction, retrying
// rejections and aborts with fresh sessions.
func commitWrite(ctx context.Context, cl *client.Client, item txn.ItemID, val []byte) error {
	for attempt := 0; attempt < 50; attempt++ {
		s := cl.Begin()
		if _, err := s.Read(ctx, item); err != nil {
			return err
		}
		if err := s.Write(ctx, item, val); err != nil {
			return err
		}
		res, err := s.Commit(ctx)
		if err != nil {
			return err
		}
		if res.Committed {
			return nil
		}
	}
	return fmt.Errorf("bench: write to %s failed to commit", item)
}
