// Package bench is the experiment harness that regenerates the paper's
// evaluation (§6): the Transactional-YCSB-like workload driver, the
// parameter sweeps behind Figures 12–15, and the table printer that emits
// the same series the paper plots.
//
// The absolute numbers differ from the paper's (Go vs Python, simulated
// intra-DC latency vs EC2), but each figure's shape — who wins, by what
// factor, and how the curves move with each parameter — is the
// reproduction target; the committed BENCH_PR*.json reports record the
// measured trajectory PR over PR (cmd/fidesbench -json writes them).
package bench

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/txn"
	"repro/internal/workload"
)

// RunConfig describes one experimental data point.
type RunConfig struct {
	// Servers is the number of database servers / shards.
	Servers int
	// ItemsPerShard is the shard size (paper default 10000).
	ItemsPerShard int
	// Batch is the number of transactions per block.
	Batch int
	// Requests is the number of client transactions to commit (paper: 1000
	// per run).
	Requests int
	// Clients is the number of concurrent client drivers (default scales
	// with Batch so blocks fill).
	Clients int
	// OpsPerTxn is the operations per transaction (paper: 5).
	OpsPerTxn int
	// Protocol selects TFCommit (default) or 2PC.
	Protocol core.Protocol
	// NetworkLatency is the simulated one-way latency (default 250µs).
	NetworkLatency time.Duration
	// Seed makes the workload deterministic.
	Seed int64
	// DataDir enables durability for the run (WAL + recovery, see
	// internal/durable); empty keeps servers in memory.
	DataDir string
	// Fsync selects the WAL flush discipline when DataDir is set.
	Fsync durable.FsyncMode
	// Pipeline is the number of TFCommit blocks in flight (0/1 = serial).
	Pipeline int
	// Coordinators is the number of rotating coordinator servers (0/1 =
	// the single designated coordinator).
	Coordinators int
	// Crypto selects the verification backend (core.CryptoSerial /
	// core.CryptoBatched; empty = serial).
	Crypto string
	// CryptoWorkers sizes the batched backend's worker pool (0 =
	// GOMAXPROCS).
	CryptoWorkers int
	// MaxProcs pins runtime.GOMAXPROCS for the duration of the run (0
	// leaves it alone) — the -exp crypto sweep measures the same config at
	// 1 and several cores.
	MaxProcs int
}

func (c *RunConfig) applyDefaults() {
	if c.Servers <= 0 {
		c.Servers = 5
	}
	if c.ItemsPerShard <= 0 {
		c.ItemsPerShard = 10000
	}
	if c.Batch <= 0 {
		c.Batch = 100
	}
	if c.Requests <= 0 {
		c.Requests = 1000
	}
	if c.OpsPerTxn <= 0 {
		c.OpsPerTxn = 5
	}
	if c.Clients <= 0 {
		c.Clients = 2 * c.Batch
		if c.Clients < 16 {
			c.Clients = 16
		}
		if c.Clients > c.Requests {
			c.Clients = c.Requests
		}
	}
	if c.Protocol == 0 {
		c.Protocol = core.ProtocolTFCommit
	}
	if c.NetworkLatency == 0 {
		c.NetworkLatency = 250 * time.Microsecond
	}
}

// Metrics is the outcome of one experimental run (or the aggregate of
// several: rate fields are averaged, counters are summed over Runs).
type Metrics struct {
	Config RunConfig

	// Runs is how many runs this Metrics aggregates (1 for a single Run).
	// Counter fields (Committed, Aborted, Rejected, Blocks) are sums over
	// all Runs; divide by Runs for per-run figures.
	Runs int

	// Committed, Aborted and Rejected count transaction outcomes; Aborted
	// and Rejected attempts were retried until Committed reached
	// Config.Requests (per run).
	Committed int
	Aborted   int
	Rejected  int

	// Elapsed is the wall time of the measured phase.
	Elapsed time.Duration
	// ThroughputTPS is Committed / Elapsed — the paper's "transactions
	// committed per second".
	ThroughputTPS float64
	// LatencyMS is the amortized per-transaction commit latency
	// (Elapsed / Committed), the series the paper's latency curves track
	// (see docs/protocol.md).
	LatencyMS float64
	// EndToEndMS is the mean observed end_transaction→decision time.
	EndToEndMS float64
	// P50MS, P95MS and P99MS are percentiles of the same per-request
	// end_transaction→decision distribution EndToEndMS averages, and MaxMS
	// is its worst case. The mean hides tail stalls (a wedged phase-5
	// retry, a group-commit fsync convoy); the tail series make them
	// visible per experiment. When aggregating several runs the
	// percentiles are averaged like the other rate fields, while MaxMS is
	// the maximum over the runs.
	P50MS float64
	P95MS float64
	P99MS float64
	MaxMS float64
	// MHTUpdateMS is the mean per-block Merkle-tree update time across
	// servers (Figure 14's third series).
	MHTUpdateMS float64
	// Blocks is the number of blocks committed.
	Blocks int
}

// Run executes one experimental data point: it builds a cluster, drives
// Requests transactions through concurrent clients, and aggregates the
// metrics.
func Run(cfg RunConfig) (*Metrics, error) {
	return RunWith(cfg, nil)
}

// RunWith is Run with a hook that attaches an observer — e.g. a
// watchtower polling in the background — to the freshly built cluster
// before the workload starts. The returned cleanup runs after the
// measured phase, while the cluster is still alive.
func RunWith(cfg RunConfig, attach func(*core.Cluster) (cleanup func(), err error)) (*Metrics, error) {
	cfg.applyDefaults()
	if cfg.MaxProcs > 0 {
		prev := runtime.GOMAXPROCS(cfg.MaxProcs)
		defer runtime.GOMAXPROCS(prev)
	}
	cluster, err := core.NewCluster(core.Config{
		NumServers:     cfg.Servers,
		ItemsPerShard:  cfg.ItemsPerShard,
		BatchSize:      cfg.Batch,
		BatchWait:      2 * time.Millisecond,
		NetworkLatency: cfg.NetworkLatency,
		Protocol:       cfg.Protocol,
		DataDir:        cfg.DataDir,
		Fsync:          cfg.Fsync,
		Pipeline:       cfg.Pipeline,
		Coordinators:   cfg.Coordinators,
		Crypto:         cfg.Crypto,
		CryptoWorkers:  cfg.CryptoWorkers,
		// Benchmarks measure latency-sensitive throughput: they need the
		// microsecond-accurate delivery delays, and they can afford the
		// yield-spin that buys them (tests default to plain sleeps).
		PreciseNetDelay: true,
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	if attach != nil {
		cleanup, err := attach(cluster)
		if err != nil {
			return nil, err
		}
		defer cleanup()
	}
	return drive(cluster, cfg)
}

// drive runs the workload phase against an existing cluster.
func drive(cluster *core.Cluster, cfg RunConfig) (*Metrics, error) {
	ctx := context.Background()
	items := cluster.Directory().Items()
	sharedTS := txn.NewSharedClock(1)

	type result struct {
		committed int
		aborted   int
		rejected  int
		latencies []time.Duration
		err       error
	}

	perClient := make([]int, cfg.Clients)
	for i := 0; i < cfg.Requests; i++ {
		perClient[i%cfg.Clients]++
	}

	start := time.Now()
	results := make(chan result, cfg.Clients)
	var wg sync.WaitGroup
	for ci := 0; ci < cfg.Clients; ci++ {
		quota := perClient[ci]
		if quota == 0 {
			continue
		}
		wg.Add(1)
		go func(ci, quota int) {
			defer wg.Done()
			res := result{}
			defer func() { results <- res }()

			cl, err := cluster.NewClientWithTS(sharedTS)
			if err != nil {
				res.err = err
				return
			}
			gen, err := workload.New(workload.Config{
				Items:     items,
				OpsPerTxn: cfg.OpsPerTxn,
				Seed:      cfg.Seed + int64(ci)*7919,
			})
			if err != nil {
				res.err = err
				return
			}
			for n := 0; n < quota; n++ {
				plan := gen.Next()
				lat, aborted, rejected, err := runPlan(ctx, cl, plan)
				if err != nil {
					res.err = err
					return
				}
				res.committed++
				res.aborted += aborted
				res.rejected += rejected
				res.latencies = append(res.latencies, lat)
			}
		}(ci, quota)
	}
	wg.Wait()
	close(results)

	m := &Metrics{Config: cfg, Runs: 1}
	var lats []time.Duration
	for r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("bench: workload driver: %w", r.err)
		}
		m.Committed += r.committed
		m.Aborted += r.aborted
		m.Rejected += r.rejected
		lats = append(lats, r.latencies...)
	}
	m.Elapsed = time.Since(start)
	if m.Committed > 0 {
		m.ThroughputTPS = float64(m.Committed) / m.Elapsed.Seconds()
		m.LatencyMS = m.Elapsed.Seconds() * 1000 / float64(m.Committed)
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var latSum time.Duration
		for _, l := range lats {
			latSum += l
		}
		m.EndToEndMS = (latSum / time.Duration(len(lats))).Seconds() * 1000
		m.P50MS = percentileMS(lats, 50)
		m.P95MS = percentileMS(lats, 95)
		m.P99MS = percentileMS(lats, 99)
		m.MaxMS = lats[len(lats)-1].Seconds() * 1000
	}

	// Aggregate Merkle-update cost and block count across servers.
	var mhtTotal time.Duration
	var mhtBlocks int
	for _, id := range cluster.Servers() {
		st := cluster.Server(id).Stats()
		mhtTotal += st.MHTTime
		mhtBlocks += st.MHTBlocks
	}
	if mhtBlocks > 0 {
		m.MHTUpdateMS = (mhtTotal / time.Duration(mhtBlocks)).Seconds() * 1000
	}
	m.Blocks = cluster.ServerAt(0).Log().Len()
	return m, nil
}

// percentileMS returns the p-th percentile (nearest-rank) of an ascending
// latency slice, in milliseconds.
func percentileMS(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx].Seconds() * 1000
}

// runPlan executes one transaction plan with retries. A rejection (stale
// commit timestamp) leaves the session's read/write sets valid, so the
// client re-commits the same session with its fast-forwarded clock; an
// abort (OCC conflict) requires fresh reads, so the plan is re-executed.
func runPlan(ctx context.Context, cl *client.Client, plan *workload.Plan) (latency time.Duration, aborted, rejected int, err error) {
	const (
		maxExecutions = 50  // full re-executions after aborts
		maxRecommits  = 500 // cheap same-session retries after rejections
	)
	for execution := 0; execution < maxExecutions; execution++ {
		s := cl.Begin()
		for _, op := range plan.Ops {
			switch op.Kind {
			case workload.OpRead:
				if _, err := s.Read(ctx, op.Item); err != nil {
					return 0, aborted, rejected, err
				}
			case workload.OpWrite:
				if err := s.Write(ctx, op.Item, op.Value); err != nil {
					return 0, aborted, rejected, err
				}
			}
		}
		for recommit := 0; recommit < maxRecommits; recommit++ {
			start := time.Now()
			res, err := s.Commit(ctx)
			if err != nil {
				return 0, aborted, rejected, err
			}
			lat := time.Since(start)
			switch {
			case res.Committed:
				return lat, aborted, rejected, nil
			case res.Rejected:
				rejected++
				continue // same session, fresh timestamp
			default:
				aborted++
			}
			break // aborted: re-execute with fresh reads
		}
	}
	return 0, aborted, rejected, fmt.Errorf("bench: plan failed to commit after %d executions", maxExecutions)
}
