// Command quickstart is the smallest end-to-end Fides program: start a
// five-server cluster on untrusted infrastructure, run a couple of
// distributed transactions through TFCommit, inspect the collectively
// signed log, and finish with a clean audit.
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	fides "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// Five untrusted servers, one shard of 1000 items each; the first
	// server doubles as the designated TFCommit coordinator (paper §4.1).
	cluster, err := fides.NewCluster(fides.Config{
		NumServers:    5,
		ItemsPerShard: 1000,
		BatchSize:     4,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	client, err := cluster.NewClient()
	if err != nil {
		return err
	}

	// Transaction 1: a distributed read-modify-write across two shards.
	s := client.Begin()
	x := fides.ItemName(0, 7) // stored on server s00
	y := fides.ItemName(3, 9) // stored on server s03
	if _, err := s.Read(ctx, x); err != nil {
		return err
	}
	if err := s.Write(ctx, x, []byte("100")); err != nil {
		return err
	}
	if err := s.Write(ctx, y, []byte("250")); err != nil {
		return err
	}
	res, err := s.Commit(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("txn %s: committed=%v at %s in block %d (co-signed by %d servers)\n",
		s.ID(), res.Committed, res.TS, res.Block.Height, len(res.Block.Signers))

	// Transaction 2: read back what transaction 1 wrote.
	s2 := client.Begin()
	v, err := s2.Read(ctx, y)
	if err != nil {
		return err
	}
	res2, err := s2.Commit(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("txn %s: read %s=%q, committed=%v\n", s2.ID(), y, v, res2.Committed)

	// Every server replicated the same tamper-proof log.
	for _, id := range cluster.Servers() {
		fmt.Printf("server %s holds %d log blocks\n", id, cluster.Server(id).Log().Len())
	}

	// An external audit verifies v-ACID end to end (paper Theorem 1).
	report, err := cluster.Audit(ctx, fides.AuditOptions{CheckDatastore: true})
	if err != nil {
		return err
	}
	fmt.Printf("audit: clean=%v, findings=%d, authoritative log=%d blocks (from %s)\n",
		report.Clean(), len(report.Findings), len(report.Authoritative), report.AuthoritativeFrom)
	return nil
}
