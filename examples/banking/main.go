// Command banking reenacts the failure scenarios of paper §5 on a small
// bank whose accounts are sharded across untrusted servers.
//
// Act 1 (Scenario 1, Figure 10): transfers debit two accounts; a malicious
// server then serves a stale balance with up-to-date timestamps, a
// committed transaction records the lie, and the auditor's read-value
// chain check (Lemma 1) pins it on the server.
//
// Act 2 (Scenario 3, Figure 11): another server silently refuses to apply
// a committed debit; the Verification-Object audit (Lemma 2) catches the
// corrupted datastore at the precise version.
//
// Run it with:
//
//	go run ./examples/banking
package main

import (
	"context"
	"fmt"
	"log"
	"strconv"

	fides "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	cluster, err := fides.NewCluster(fides.Config{
		NumServers:    3,
		ItemsPerShard: 100,
		BatchSize:     1,
		MultiVersion:  true, // enables per-version audits and recoverability
		InitialValue: func(fides.ItemID) []byte {
			return []byte("1000") // every account starts with $1000
		},
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	teller, err := cluster.NewClient()
	if err != nil {
		return err
	}

	// Account x lives on server s01, account y on server s02.
	accountX := fides.ItemName(1, 10)
	accountY := fides.ItemName(2, 20)

	transfer := func(from, to fides.ItemID, amount int) error {
		s := teller.Begin()
		fromBal, err := readBalance(ctx, s, from)
		if err != nil {
			return err
		}
		toBal, err := readBalance(ctx, s, to)
		if err != nil {
			return err
		}
		if fromBal < amount {
			return fmt.Errorf("insufficient funds in %s: $%d", from, fromBal)
		}
		if err := s.Write(ctx, from, []byte(strconv.Itoa(fromBal-amount))); err != nil {
			return err
		}
		if err := s.Write(ctx, to, []byte(strconv.Itoa(toBal+amount))); err != nil {
			return err
		}
		res, err := s.Commit(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("transfer $%d %s→%s: committed=%v (block %d)\n",
			amount, from, to, res.Committed, res.Block.Height)
		return nil
	}

	// Honest traffic: two clean transfers.
	if err := transfer(accountX, accountY, 100); err != nil {
		return err
	}
	if err := transfer(accountY, accountX, 50); err != nil {
		return err
	}

	// --- Act 1: stale reads (Scenario 1) ---
	fmt.Println("\ns01 turns malicious: serving stale balances with fresh timestamps")
	cluster.Server(fides.ServerName(1)).SetFaults(fides.ServerFaults{StaleReads: true})
	if err := transfer(accountX, accountY, 25); err != nil {
		return err
	}
	cluster.Server(fides.ServerName(1)).SetFaults(fides.ServerFaults{})

	// --- Act 2: dropped datastore update (Scenario 3) ---
	fmt.Println("s02 turns malicious: committed debits silently not applied")
	cluster.Server(fides.ServerName(2)).SetFaults(fides.ServerFaults{SkipApply: true})
	if err := transfer(accountY, accountX, 75); err != nil {
		return err
	}

	// --- The audit ---
	report, err := cluster.Audit(ctx, fides.AuditOptions{
		CheckDatastore: true,
		Exhaustive:     true,
		MultiVersion:   true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\naudit: clean=%v, %d finding(s)\n", report.Clean(), len(report.Findings))
	for _, f := range report.Findings {
		fmt.Printf("  %s\n", f)
	}
	if fv := report.FirstViolation(); fv != nil {
		fmt.Printf("first violation: block %d (%s), implicating %v\n", fv.Height, fv.Type, fv.Servers)
	}

	if report.Clean() {
		return fmt.Errorf("audit unexpectedly clean — the malicious servers escaped")
	}
	if !report.Implicates(fides.ServerName(1)) || !report.Implicates(fides.ServerName(2)) {
		return fmt.Errorf("audit failed to implicate both malicious servers")
	}
	fmt.Println("\nboth malicious servers detected and irrefutably identified ✓")
	return nil
}

func readBalance(ctx context.Context, s *fides.Session, account fides.ItemID) (int, error) {
	raw, err := s.Read(ctx, account)
	if err != nil {
		return 0, err
	}
	bal, err := strconv.Atoi(string(raw))
	if err != nil {
		return 0, fmt.Errorf("account %s holds non-numeric balance %q", account, raw)
	}
	return bal, nil
}
