// Command supplychain models the paper's motivating blockchain use case
// (§1, [23]): a supply chain whose stages are operated by mutually
// distrusting administrative domains — a grower, a shipper, and a
// retailer — each hosting one shard of the shared database on its own
// (untrusted) infrastructure.
//
// Lots move through the chain via distributed transactions that update the
// custody record on one domain's shard and the stage ledger on another's.
// No domain trusts any other, yet TFCommit gives every participant a
// collectively signed, hash-chained record of every hand-off, and any
// domain (or an external regulator) can audit the full history at any
// time.
//
// Run it with:
//
//	go run ./examples/supplychain
package main

import (
	"context"
	"fmt"
	"log"

	fides "repro"
)

const (
	growerShard   = 0
	shipperShard  = 1
	retailerShard = 2
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	cluster, err := fides.NewCluster(fides.Config{
		NumServers:    3,
		ItemsPerShard: 200,
		BatchSize:     2,
		MultiVersion:  true,
		InitialValue:  func(fides.ItemID) []byte { return []byte("-") },
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	// Each domain runs its own client against its own (and its partners')
	// shards.
	grower, err := cluster.NewClient()
	if err != nil {
		return err
	}
	shipper, err := cluster.NewClient()
	if err != nil {
		return err
	}
	retailer, err := cluster.NewClient()
	if err != nil {
		return err
	}

	// A lot is tracked by three records, one per domain:
	//   grower shard:   harvest record
	//   shipper shard:  custody record
	//   retailer shard: shelf record
	lot := func(i int) (harvest, custody, shelf fides.ItemID) {
		return fides.ItemName(growerShard, i), fides.ItemName(shipperShard, i), fides.ItemName(retailerShard, i)
	}

	move := func(cl *fides.Client, stage string, reads []fides.ItemID, writes map[fides.ItemID]string) error {
		for attempt := 0; attempt < 5; attempt++ {
			s := cl.Begin()
			for _, id := range reads {
				if _, err := s.Read(ctx, id); err != nil {
					return err
				}
			}
			for id, v := range writes {
				if err := s.Write(ctx, id, []byte(v)); err != nil {
					return err
				}
			}
			res, err := s.Commit(ctx)
			if err != nil {
				return err
			}
			if res.Committed {
				fmt.Printf("%-22s block=%d ts=%s co-signed ✓\n", stage, res.Block.Height, res.TS)
				return nil
			}
		}
		return fmt.Errorf("stage %q could not commit", stage)
	}

	for i := 1; i <= 3; i++ {
		harvest, custody, shelf := lot(i)
		lotID := fmt.Sprintf("lot-%03d", i)

		// Grower registers the harvest.
		if err := move(grower, lotID+" harvested", nil,
			map[fides.ItemID]string{harvest: "harvested:" + lotID}); err != nil {
			return err
		}
		// Shipper takes custody: reads the harvest record (cross-domain
		// read) and writes its own custody record.
		if err := move(shipper, lotID+" in transit",
			[]fides.ItemID{harvest},
			map[fides.ItemID]string{custody: "in-transit:" + lotID}); err != nil {
			return err
		}
		// Retailer receives: reads custody, stocks the shelf, and closes
		// out the custody record — one atomic cross-domain transaction.
		if err := move(retailer, lotID+" on shelf",
			[]fides.ItemID{custody},
			map[fides.ItemID]string{
				shelf:   "on-shelf:" + lotID,
				custody: "delivered:" + lotID,
			}); err != nil {
			return err
		}
	}

	// Dispute resolution: the shipper claims lot-002 was delivered; the
	// retailer disputes it. Instead of trusting either party, a regulator
	// audits the collectively signed history.
	_, custody2, _ := lot(2)
	regulatorView := ""
	report, err := cluster.Audit(ctx, fides.AuditOptions{
		CheckDatastore: true, Exhaustive: true, MultiVersion: true,
	})
	if err != nil {
		return err
	}
	for _, b := range report.Authoritative {
		for _, tr := range b.Txns {
			for _, w := range tr.Writes {
				if w.ID == custody2 {
					regulatorView = string(w.NewVal)
				}
			}
		}
	}
	fmt.Printf("\nregulator audit: clean=%v over %d blocks; custody(%s) = %q\n",
		report.Clean(), len(report.Authoritative), custody2, regulatorView)
	if !report.Clean() {
		for _, f := range report.Findings {
			fmt.Printf("  %s\n", f)
		}
		return fmt.Errorf("audit found anomalies in an honest run")
	}

	// The signed log itself settles the dispute: its blocks cannot be
	// forged, reordered, or truncated without detection (Lemmas 6–7).
	fmt.Println("dispute settled from the tamper-proof log, no trusted third party involved ✓")
	return nil
}
