// Command auditdemo walks through the full failure catalogue of paper §3.2
// and §5, one attack at a time, showing for each either (a) the protocol
// refusing to make progress and naming the culprit mid-flight, or (b) the
// offline audit detecting the violation and irrefutably identifying the
// misbehaving server.
//
// Run it with:
//
//	go run ./examples/auditdemo
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	fides "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

type scenario struct {
	name  string
	setup func(*fides.Cluster)
	// online is set when the attack is caught during the protocol itself.
	online bool
	// wantFinding is the audit finding expected for offline detections.
	wantFinding fides.FindingType
	// culprit must appear in the findings / error.
	culprit fides.NodeID
}

func run() error {
	ctx := context.Background()

	scenarios := []scenario{
		{
			name: "execution layer: stale reads (Scenario 1, Lemma 1)",
			setup: func(c *fides.Cluster) {
				c.Server(fides.ServerName(1)).SetFaults(fides.ServerFaults{StaleReads: true})
			},
			wantFinding: fides.FindingIncorrectRead,
			culprit:     fides.ServerName(1),
		},
		{
			name: "datastore layer: corrupted apply (Scenario 3, Lemma 2)",
			setup: func(c *fides.Cluster) {
				c.Server(fides.ServerName(2)).SetFaults(fides.ServerFaults{CorruptApplyValue: []byte("evil")})
			},
			wantFinding: fides.FindingDatastoreCorruption,
			culprit:     fides.ServerName(2),
		},
		{
			name: "commit layer: wrong CoSi commitment (Lemma 4)",
			setup: func(c *fides.Cluster) {
				c.Server(fides.ServerName(3)).SetFaults(fides.ServerFaults{BadCommitment: true})
			},
			online:  true,
			culprit: fides.ServerName(3),
		},
		{
			name: "coordinator: fake root for a benign cohort (Scenario 2)",
			setup: func(c *fides.Cluster) {
				_ = c.SetCoordinatorFaults(fides.CoordinatorFaults{FakeRootFor: fides.ServerName(2)})
			},
			online:  true,
			culprit: fides.ServerName(2),
		},
		{
			name: "coordinator: challenge-phase equivocation (Lemma 5 case 1)",
			setup: func(c *fides.Cluster) {
				_ = c.SetCoordinatorFaults(fides.CoordinatorFaults{EquivocateChallenge: true})
			},
			online: true,
		},
		{
			name: "log layer: tampered block (Lemma 6)",
			setup: func(c *fides.Cluster) {
				// Warm-up block 1 wrote shard 1's item; rewrite that entry.
				c.Server(fides.ServerName(1)).SetFaults(fides.ServerFaults{
					TamperBlock: &fides.TamperSpec{Height: 1, Item: fides.ItemName(1, 1), NewVal: []byte("rewritten")},
				})
			},
			wantFinding: fides.FindingTamperedLog,
			culprit:     fides.ServerName(1),
		},
		{
			name: "log layer: reordered blocks (Lemma 6)",
			setup: func(c *fides.Cluster) {
				c.Server(fides.ServerName(3)).SetFaults(fides.ServerFaults{ReorderLog: true})
			},
			wantFinding: fides.FindingReorderedLog,
			culprit:     fides.ServerName(3),
		},
		{
			name: "log layer: dropped tail (Lemma 7)",
			setup: func(c *fides.Cluster) {
				c.Server(fides.ServerName(2)).SetFaults(fides.ServerFaults{DropTailBlocks: 1})
			},
			wantFinding: fides.FindingIncompleteLog,
			culprit:     fides.ServerName(2),
		},
	}

	for i, sc := range scenarios {
		fmt.Printf("=== %d. %s\n", i+1, sc.name)
		if err := runScenario(ctx, sc); err != nil {
			return fmt.Errorf("scenario %q: %w", sc.name, err)
		}
		fmt.Println()
	}
	fmt.Println("all failure classes detected ✓")
	return nil
}

func runScenario(ctx context.Context, sc scenario) error {
	cluster, err := fides.NewCluster(fides.Config{
		NumServers:    4,
		ItemsPerShard: 50,
		BatchSize:     1,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	cl, err := cluster.NewClient()
	if err != nil {
		return err
	}

	// Honest warm-up traffic touching every shard.
	for shard := 0; shard < 4; shard++ {
		if err := commitOne(ctx, cl, fides.ItemName(shard, 1), "warmup"); err != nil {
			return err
		}
	}

	sc.setup(cluster)

	// Attack traffic re-touches the warmed-up items, so every fault class
	// has committed history to corrupt, stale values to serve, and log
	// entries to rewrite.
	attackErr := func() error {
		for shard := 0; shard < 4; shard++ {
			if err := commitOne(ctx, cl, fides.ItemName(shard, 1), "attacked"); err != nil {
				return err
			}
		}
		return nil
	}()

	if sc.online {
		if attackErr == nil {
			return fmt.Errorf("attack expected to stall the protocol, but commits succeeded")
		}
		fmt.Printf("  protocol refused mid-flight: %v\n", firstLine(attackErr.Error()))
		if sc.culprit != "" && !strings.Contains(attackErr.Error(), string(sc.culprit)) {
			return fmt.Errorf("culprit %s not named in: %v", sc.culprit, attackErr)
		}
		return nil
	}
	if attackErr != nil {
		return attackErr
	}

	report, err := cluster.Audit(ctx, fides.AuditOptions{CheckDatastore: true})
	if err != nil {
		return err
	}
	found := report.ByType(sc.wantFinding)
	if len(found) == 0 {
		return fmt.Errorf("audit missed the %s violation; findings: %v", sc.wantFinding, report.Findings)
	}
	fmt.Printf("  audit: %s\n", found[0])
	if sc.culprit != "" && !report.Implicates(sc.culprit) {
		return fmt.Errorf("culprit %s not implicated", sc.culprit)
	}
	return nil
}

// commitOne commits a read-modify-write of one item, retrying rejected
// attempts.
func commitOne(ctx context.Context, cl *fides.Client, item fides.ItemID, val string) error {
	for attempt := 0; attempt < 5; attempt++ {
		s := cl.Begin()
		if _, err := s.Read(ctx, item); err != nil {
			return err
		}
		if err := s.Write(ctx, item, []byte(val)); err != nil {
			return err
		}
		res, err := s.Commit(ctx)
		if err != nil {
			return err
		}
		if res.Committed {
			return nil
		}
	}
	return fmt.Errorf("item %s: could not commit", item)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	if len(s) > 160 {
		return s[:160] + "…"
	}
	return s
}
