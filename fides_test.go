package fides_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	fides "repro"
)

// TestPublicAPIEndToEnd exercises the library exactly as the README's
// quickstart does: cluster up, transact, verify, audit — through the public
// facade only.
func TestPublicAPIEndToEnd(t *testing.T) {
	cluster, err := fides.NewCluster(fides.Config{
		NumServers:    4,
		ItemsPerShard: 64,
		BatchSize:     2,
		BatchWait:     time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()

	client, err := cluster.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	s := client.Begin()
	x := fides.ItemName(0, 1)
	y := fides.ItemName(2, 3)
	if _, err := s.Read(ctx, x); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(ctx, x, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(ctx, y, []byte("b")); err != nil {
		t.Fatal(err)
	}
	res, err := s.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed || res.Block == nil {
		t.Fatalf("result = %+v", res)
	}
	if err := client.VerifyBlock(res.Block); err != nil {
		t.Fatalf("client-side block verification: %v", err)
	}

	report, err := cluster.Audit(ctx, fides.AuditOptions{CheckDatastore: true})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		t.Fatalf("findings: %v", report.Findings)
	}
}

// TestPublicAPIFaultInjection verifies the exported fault-injection surface
// drives the same detection pipeline as the internals.
func TestPublicAPIFaultInjection(t *testing.T) {
	cluster, err := fides.NewCluster(fides.Config{
		NumServers:    3,
		ItemsPerShard: 16,
		BatchSize:     1,
		BatchWait:     time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()

	client, err := cluster.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	target := fides.ItemName(1, 2)
	commit := func(val string) {
		t.Helper()
		for attempt := 0; attempt < 5; attempt++ {
			s := client.Begin()
			if _, err := s.Read(ctx, target); err != nil {
				t.Fatal(err)
			}
			if err := s.Write(ctx, target, []byte(val)); err != nil {
				t.Fatal(err)
			}
			res, err := s.Commit(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if res.Committed {
				return
			}
		}
		t.Fatal("could not commit")
	}
	commit("honest")
	cluster.Server(fides.ServerName(1)).SetFaults(fides.ServerFaults{StaleReads: true})
	commit("poisoned")

	report, err := cluster.Audit(ctx, fides.AuditOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.ByType(fides.FindingIncorrectRead)) == 0 {
		t.Fatalf("findings: %v", report.Findings)
	}
	if !report.Implicates(fides.ServerName(1)) {
		t.Fatal("s01 not implicated")
	}
}

// TestPublicAPITwoPCBaseline exercises the exported 2PC protocol switch.
func TestPublicAPITwoPCBaseline(t *testing.T) {
	cluster, err := fides.NewCluster(fides.Config{
		NumServers:    3,
		ItemsPerShard: 16,
		BatchSize:     1,
		BatchWait:     time.Millisecond,
		Protocol:      fides.ProtocolTwoPC,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()

	client, err := cluster.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	s := client.Begin()
	if err := s.Write(ctx, fides.ItemName(0, 0), []byte("x")); err != nil {
		t.Fatal(err)
	}
	res, err := s.Commit(ctx)
	if err != nil || !res.Committed {
		t.Fatalf("2pc commit: %v %+v", err, res)
	}
	item, err := cluster.ServerAt(0).Shard().Get(fides.ItemName(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(item.Value, []byte("x")) {
		t.Fatalf("value = %q", item.Value)
	}
}

// TestPublicAPIBench exercises the exported benchmark entry point.
func TestPublicAPIBench(t *testing.T) {
	m, err := fides.RunBench(fides.BenchConfig{
		Servers: 3, ItemsPerShard: 64, Batch: 4, Requests: 12,
		NetworkLatency: 20 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Committed != 12 || m.ThroughputTPS <= 0 {
		t.Fatalf("metrics = %+v", m)
	}
}
